//! The epoch loop: fault ingestion, ladder execution, metrics, audit.

use mcast_core::{
    repair_user, solve_bla, solve_mla, solve_mnu, strongest_allowed_ap, ApId, Association,
    Instance, InstanceBuilder, LoadLedger, Objective, SolveError, UserId,
};
use mcast_faults::{FaultEventKind, FaultPlan, RecoverySummary};

use crate::audit::{audit_epoch, CoverageRule};
use crate::ladder::{LadderPolicy, SolvePath, WorkMeter};
use crate::report::{ControllerReport, EpochRecord};
use crate::state::NetworkState;

/// Configuration of a controller run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Which objective the full-solve and repair rungs optimize. Budgets
    /// are hard admission constraints under [`Objective::Mnu`] only —
    /// BLA/MLA are the paper's serve-everyone objectives, where the
    /// controller never sheds a reachable user.
    pub objective: Objective,
    /// The highest ladder rung the controller may use per epoch.
    pub policy: LadderPolicy,
    /// Epoch length in microseconds of the fault-timeline clock.
    pub epoch_us: u64,
    /// How many epochs to run; the fault horizon is
    /// `epoch_us × n_epochs`.
    pub n_epochs: u64,
    /// Per-epoch work budget in deterministic work units
    /// ([`WorkMeter`]); `0` = unlimited.
    pub work_budget: u64,
    /// Run the from-scratch ledger oracle check every epoch even in
    /// release builds (debug builds always run it).
    pub audit_oracle: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            objective: Objective::Mnu,
            policy: LadderPolicy::Repair,
            epoch_us: 100_000,
            n_epochs: 30,
            work_budget: 0,
            audit_oracle: false,
        }
    }
}

/// Everything a controller run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerOutcome {
    /// The serializable disruption-metrics report.
    pub report: ControllerReport,
    /// The association when the run ended (not serialized into the
    /// report — it is large; tests and callers who need it get it here).
    pub association: Association,
}

/// Runs the online controller over `inst`, ingesting `plan`'s compiled
/// fault timeline, for [`ControllerConfig::n_epochs`] epochs.
///
/// The plan is [validated](FaultPlan::validate) against the instance
/// and horizon first. The run is a pure function of
/// `(inst, plan, cfg)` — all randomness was resolved when the plan
/// compiled, and time budgets are counted in deterministic work units —
/// so two identical calls produce byte-identical reports.
pub fn run(
    inst: &Instance,
    plan: &FaultPlan,
    cfg: &ControllerConfig,
) -> Result<ControllerOutcome, String> {
    if cfg.epoch_us == 0 {
        return Err("epoch_us must be positive".to_string());
    }
    if cfg.n_epochs == 0 {
        return Err("n_epochs must be positive".to_string());
    }
    let horizon_us = cfg
        .epoch_us
        .checked_mul(cfg.n_epochs)
        .ok_or_else(|| "epoch_us × n_epochs overflows the clock".to_string())?;
    plan.validate(inst.n_aps(), inst.n_users(), horizon_us)
        .map_err(|e| format!("invalid fault plan: {e}"))?;

    let mut timeline = plan.compile(inst.n_aps(), inst.n_users(), horizon_us);
    let keep = plan.link_keep_prob();
    let n_users = inst.n_users();

    let mut state = NetworkState::new(inst.n_aps(), n_users);
    let mut ledger = LoadLedger::fresh(inst);
    let mut shed = vec![false; n_users];
    let mut deferred = vec![false; n_users];
    // True while an epoch left something unfinished (degraded rung or
    // deferred users): the next epoch re-runs the ladder even without
    // new fault events.
    let mut pending_work = false;
    let mut rule = CoverageRule::Exact;

    let mut records: Vec<EpochRecord> = Vec::with_capacity(cfg.n_epochs as usize);
    let mut violations_total = 0u64;
    let mut violations_sample: Vec<String> = Vec::new();
    let mut pre_assoc: Vec<Option<ApId>> = Vec::with_capacity(n_users);
    let check_oracle = cfg.audit_oracle || cfg!(debug_assertions);

    for epoch in 0..cfg.n_epochs {
        // Events scheduled inside this epoch's window apply at its start;
        // the rung that follows is the controller's response to them.
        let window_end = (epoch + 1) * cfg.epoch_us - 1;
        pre_assoc.clear();
        pre_assoc.extend_from_slice(ledger.association().as_slice());

        // ---- 1. ingest fault events ---------------------------------
        let mut events = 0u64;
        while let Some(ev) = timeline.pop_due(window_end) {
            events += 1;
            match ev.kind {
                FaultEventKind::ApUp(a) => state.set_up(a),
                FaultEventKind::ApDown(a) => {
                    if state.set_down(a) {
                        ledger.evict_ap(a);
                    }
                }
                FaultEventKind::UserDepart(u) => {
                    if state.depart(u) {
                        if ledger.ap_of(u).is_some() {
                            ledger.leave(u);
                        }
                        shed[u.index()] = false;
                    }
                }
                FaultEventKind::UserJump { user, seed } => {
                    if state.is_present(user) {
                        state.roll_jump(inst, user, seed, keep);
                        if let Some(cur) = ledger.ap_of(user) {
                            if !state.link_ok(user, cur) {
                                ledger.leave(user);
                            }
                        }
                    }
                }
            }
        }

        // ---- 2. choose and execute a ladder rung --------------------
        let mut meter = WorkMeter::new(cfg.work_budget);
        let mut path = SolvePath::Idle;
        let mut degraded = false;
        let (mut rehomed, mut newly_shed, mut readmitted, mut deferred_now) =
            (0u64, 0u64, 0u64, 0u64);
        for d in deferred.iter_mut() {
            *d = false;
        }

        if epoch == 0 || events > 0 || pending_work {
            path = match cfg.policy {
                LadderPolicy::SsaOnly => SolvePath::Ssa,
                LadderPolicy::Full => SolvePath::Full,
                LadderPolicy::Repair if epoch == 0 => SolvePath::Full,
                LadderPolicy::Repair => SolvePath::Repair,
            };

            if path == SolvePath::Full {
                let solved = meter.try_charge(full_cost(inst, &state))
                    && match full_resolve(inst, &state, cfg.objective) {
                        Ok(assoc) => {
                            ledger = LoadLedger::new(inst, assoc);
                            for u in inst.users() {
                                if shed[u.index()] && ledger.ap_of(u).is_some() {
                                    shed[u.index()] = false;
                                    readmitted += 1;
                                }
                            }
                            true
                        }
                        Err(_) => false,
                    };
                if !solved {
                    path = SolvePath::Repair;
                    degraded = true;
                }
            }

            // The admission sweep: the Repair rung proper, the leftover
            // pass after a Full solve, and (starting directly on the SSA
            // rung) the SsaOnly placement sweep. Most-constrained users
            // first, ties in id order — the same order as MNU's augment
            // pass, so an unfaulted Full epoch matches the one-shot
            // solver exactly.
            let mut on_ssa_rung = path == SolvePath::Ssa;
            let enforce_budget = cfg.objective == Objective::Mnu;
            let mut targets: Vec<UserId> = inst
                .users()
                .filter(|&u| {
                    state.is_present(u)
                        && ledger.ap_of(u).is_none()
                        && inst
                            .candidate_aps(u)
                            .iter()
                            .any(|&(a, _)| state.allowed(u, a))
                })
                .collect();
            targets.sort_by_key(|&u| inst.candidate_aps(u).len());

            for u in targets {
                let was_shed = shed[u.index()];
                let placed;
                if !on_ssa_rung && meter.try_charge(inst.candidate_aps(u).len() as u64) {
                    placed = repair_user(&mut ledger, u, cfg.objective, enforce_budget, |a| {
                        state.allowed(u, a)
                    });
                } else {
                    if !on_ssa_rung {
                        // Fell off the repair rung mid-sweep.
                        on_ssa_rung = true;
                        degraded = true;
                    }
                    if !meter.try_charge(1) {
                        // Cannot even probe the strongest AP: defer to
                        // the next epoch, exempt from the coverage audit.
                        deferred[u.index()] = true;
                        deferred_now += 1;
                        degraded = true;
                        continue;
                    }
                    placed = strongest_allowed_ap(inst, u, |a| state.allowed(u, a))
                        .filter(|&a| {
                            !enforce_budget
                                || ledger
                                    .load_if_joined(u, a)
                                    .is_some_and(|l| l <= inst.budget(a))
                        })
                        .inspect(|&a| ledger.join(u, a));
                }
                match placed {
                    Some(_) => {
                        rehomed += 1;
                        if was_shed {
                            shed[u.index()] = false;
                            readmitted += 1;
                        }
                    }
                    None => {
                        if !was_shed {
                            shed[u.index()] = true;
                            newly_shed += 1;
                        }
                    }
                }
            }

            rule = if on_ssa_rung {
                CoverageRule::StrongestOnly
            } else {
                CoverageRule::Exact
            };
            pending_work = degraded || deferred_now > 0;
        }

        // ---- 3. disruption metrics ----------------------------------
        let mut handoffs = 0u64;
        let mut changed = false;
        for u in inst.users() {
            let before = pre_assoc[u.index()];
            let after = ledger.ap_of(u);
            if before != after {
                changed = true;
                if before.is_some() && after.is_some() {
                    handoffs += 1;
                }
            }
        }

        // ---- 4. audit -----------------------------------------------
        let violations = audit_epoch(
            &ledger,
            &state,
            cfg.objective,
            rule,
            &deferred,
            check_oracle,
        );
        debug_assert!(violations.is_empty(), "epoch {epoch}: {violations:?}");
        violations_total += violations.len() as u64;
        let n_violations = violations.len() as u64;
        for v in violations {
            if violations_sample.len() < 8 {
                violations_sample.push(format!("epoch {epoch}: {v}"));
            }
        }

        records.push(EpochRecord {
            epoch,
            events,
            path,
            degraded,
            rule: rule.name().to_string(),
            work: meter.spent(),
            handoffs,
            rehomed,
            shed: newly_shed,
            readmitted,
            deferred: deferred_now,
            satisfied: ledger.association().satisfied_count(),
            changed,
            violations: n_violations,
        });
    }

    // ---- 5. disruption windows --------------------------------------
    let disruptions: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.events > 0)
        .map(|(i, _)| i)
        .collect();
    let mut reconv: Vec<Option<f64>> = Vec::with_capacity(disruptions.len());
    let mut coverage_loss = 0u64;
    for (i, &d) in disruptions.iter().enumerate() {
        let end = disruptions.get(i + 1).copied().unwrap_or(records.len());
        // Reconvergence: the last epoch in the window whose association
        // still changed. A same-epoch repair that stays quiet afterwards
        // reconverges in 0 epochs; a window still churning in the run's
        // final epoch never settled.
        let last_change = (d..end).rfind(|&e| records[e].changed);
        reconv.push(match last_change {
            None => Some(0.0),
            Some(e) if e == records.len() - 1 && end == records.len() && e > d => None,
            Some(e) => Some((e - d) as f64),
        });
        // Coverage loss: user·epochs below the pre-disruption baseline.
        let baseline = if d == 0 { 0 } else { records[d - 1].satisfied } as i64;
        for r in &records[d..end] {
            coverage_loss += (baseline - r.satisfied as i64).max(0) as u64;
        }
    }

    let handoffs: u64 = records.iter().map(|r| r.handoffs).sum();
    let report = ControllerReport {
        objective: cfg.objective.to_string(),
        policy: cfg.policy.name().to_string(),
        epoch_us: cfg.epoch_us,
        n_epochs: cfg.n_epochs,
        reconvergence_epochs: RecoverySummary::from_options(&reconv),
        handoffs,
        coverage_loss_user_epochs: coverage_loss,
        disruption: handoffs + coverage_loss,
        shed: records.iter().map(|r| r.shed).sum(),
        readmitted: records.iter().map(|r| r.readmitted).sum(),
        deferred: records.iter().map(|r| r.deferred).sum(),
        invariant_violations: violations_total,
        violations_sample,
        final_satisfied: ledger.association().satisfied_count(),
        final_max_load: ledger.max_load().as_f64(),
        final_total_load: ledger.total_load().as_f64(),
        work: records.iter().map(|r| r.work).sum(),
        epochs: records,
    };
    Ok(ControllerOutcome {
        report,
        association: ledger.into_association(),
    })
}

/// The work-unit estimate of a full re-solve: every present user's
/// candidate list crossed with the rate grid, plus per-AP setup. Charged
/// up front — a full solve cannot be abandoned halfway.
fn full_cost(inst: &Instance, state: &NetworkState) -> u64 {
    let rates = inst.supported_rates().len().max(1) as u64;
    let mut cost = inst.n_aps() as u64;
    for u in inst.users() {
        if state.is_present(u) {
            cost += inst.candidate_aps(u).len() as u64 * rates;
        }
    }
    cost
}

/// Runs the configured one-shot solver over the effective instance (up
/// APs, present users, surviving links) and maps the result back to
/// original user ids. On a pristine network this is exactly the one-shot
/// solver on the original instance.
fn full_resolve(
    inst: &Instance,
    state: &NetworkState,
    objective: Objective,
) -> Result<Association, SolveError> {
    let solve = |i: &Instance| -> Result<Association, SolveError> {
        Ok(match objective {
            Objective::Mnu => solve_mnu(i),
            Objective::Bla => solve_bla(i)?,
            Objective::Mla => solve_mla(i)?,
        }
        .association)
    };
    if state.pristine() {
        return solve(inst);
    }
    let Some((sub, sub_to_orig)) = effective_instance(inst, state) else {
        return Ok(Association::empty(inst.n_users()));
    };
    let sub_assoc = solve(&sub)?;
    let mut assoc = Association::empty(inst.n_users());
    for (i, &orig) in sub_to_orig.iter().enumerate() {
        assoc.set(orig, sub_assoc.ap_of(UserId(i as u32)));
    }
    Ok(assoc)
}

/// Builds the solver's view of the faulted network: same sessions, same
/// APs (stable [`ApId`]s and budgets — a down AP simply has no links),
/// and only present users with at least one allowed link, re-indexed
/// densely. Returns the sub-instance and the sub→original user id map,
/// or `None` if no user is currently servable.
fn effective_instance(inst: &Instance, state: &NetworkState) -> Option<(Instance, Vec<UserId>)> {
    let mut b = InstanceBuilder::new();
    b.supported_rates(inst.supported_rates().iter().copied());
    b.rate_policy(inst.rate_policy());
    for s in inst.sessions() {
        b.add_session(inst.session_rate(s));
    }
    for a in inst.aps() {
        b.add_ap(inst.budget(a));
    }
    let mut sub_to_orig: Vec<UserId> = Vec::new();
    for u in inst.users() {
        if !state.is_present(u) {
            continue;
        }
        let links: Vec<ApId> = inst
            .candidate_aps(u)
            .iter()
            .filter(|&&(a, _)| state.allowed(u, a))
            .map(|&(a, _)| a)
            .collect();
        if links.is_empty() {
            continue;
        }
        let su = b.add_user(inst.user_session(u));
        sub_to_orig.push(u);
        for a in links {
            let rate = inst.link_rate(a, u).expect("candidate implies link");
            let signal = inst.signal(a, u).expect("candidate implies link");
            b.link_with_signal(a, su, rate, signal)
                .expect("copying a valid link cannot fail");
        }
    }
    if sub_to_orig.is_empty() {
        return None;
    }
    let sub = b
        .build()
        .expect("a sub-instance of a valid instance is valid");
    Some((sub, sub_to_orig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::examples_paper::{a, figure1_instance, u};
    use mcast_core::{solve_mnu_with, solve_ssa, Kbps, MnuConfig};
    use mcast_faults::{ApOutage, UserDeparture};

    fn quick_cfg(policy: LadderPolicy) -> ControllerConfig {
        ControllerConfig {
            policy,
            n_epochs: 10,
            epoch_us: 1_000,
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn rejects_invalid_plans_and_configs() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: ApId(99),
            down_at_us: 0,
            up_at_us: None,
        });
        let err = run(&inst, &plan, &quick_cfg(LadderPolicy::Repair)).unwrap_err();
        assert!(err.contains("unknown AP 99"), "{err}");

        let cfg = ControllerConfig {
            n_epochs: 0,
            ..ControllerConfig::default()
        };
        assert!(run(&inst, &FaultPlan::none(), &cfg).is_err());
    }

    #[test]
    fn no_faults_solves_once_then_idles() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let out = run(&inst, &FaultPlan::none(), &quick_cfg(LadderPolicy::Repair)).unwrap();
        let r = &out.report;
        assert_eq!(r.invariant_violations, 0);
        assert_eq!(r.epochs[0].path, SolvePath::Full);
        assert!(r.epochs[1..].iter().all(|e| e.path == SolvePath::Idle));
        assert_eq!(r.handoffs, 0);
        assert_eq!(r.final_satisfied, 5);
        assert_eq!(r.reconvergence_epochs.n, 0, "no disruptions happened");
    }

    #[test]
    fn epoch0_ssa_only_matches_ssa_baseline() {
        // At 3 Mbps budgets bind: the online SSA rung must reproduce the
        // one-shot SSA baseline exactly (strongest AP, budget check, no
        // second choice).
        let inst = figure1_instance(Kbps::from_mbps(3));
        let out = run(&inst, &FaultPlan::none(), &quick_cfg(LadderPolicy::SsaOnly)).unwrap();
        let ssa = solve_ssa(&inst, Objective::Mnu);
        assert_eq!(out.association, ssa.association);
        assert_eq!(out.report.invariant_violations, 0);
        assert!(out.report.shed > 0, "3 Mbps SSA sheds blocked users");
    }

    #[test]
    fn outage_orphans_are_repaired_and_recovery_readmits() {
        // a1 down in epoch 2, up in epoch 6. At 3 Mbps u1/u2 only reach
        // a1: they are shed while it is down and readmitted when it
        // recovers.
        let inst = figure1_instance(Kbps::from_mbps(3));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: a(1),
            down_at_us: 2_000,
            up_at_us: Some(6_000),
        });
        let out = run(&inst, &plan, &quick_cfg(LadderPolicy::Repair)).unwrap();
        let r = &out.report;
        assert_eq!(r.invariant_violations, 0);
        assert_eq!(r.epochs[2].path, SolvePath::Repair);
        assert!(r.epochs[2].shed > 0, "a1's captive users get shed");
        assert!(r.epochs[6].readmitted > 0, "recovery readmits them");
        assert!(r.coverage_loss_user_epochs > 0);
        assert_eq!(r.reconvergence_epochs.unsettled, 0);
    }

    #[test]
    fn departures_free_load_without_violations() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.churn.departures.push(UserDeparture {
            user: u(3),
            at_us: 3_000,
        });
        for policy in LadderPolicy::ALL {
            let out = run(&inst, &plan, &quick_cfg(policy)).unwrap();
            assert_eq!(out.report.invariant_violations, 0, "{policy:?}");
            assert_eq!(out.association.ap_of(u(3)), None, "{policy:?}");
            assert_eq!(out.report.final_satisfied, 4, "{policy:?}");
        }
    }

    #[test]
    fn unfaulted_full_epoch_matches_one_shot_solvers() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        for (objective, expect) in [
            (
                Objective::Mnu,
                solve_mnu_with(&inst, &MnuConfig { augment: true }).association,
            ),
            (Objective::Bla, solve_bla(&inst).unwrap().association),
            (Objective::Mla, solve_mla(&inst).unwrap().association),
        ] {
            let cfg = ControllerConfig {
                objective,
                ..quick_cfg(LadderPolicy::Full)
            };
            let out = run(&inst, &FaultPlan::none(), &cfg).unwrap();
            assert_eq!(out.association, expect, "{objective}");
            assert_eq!(out.report.invariant_violations, 0, "{objective}");
        }
    }

    #[test]
    fn tiny_work_budget_degrades_but_never_violates() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: a(1),
            down_at_us: 2_000,
            up_at_us: Some(5_000),
        });
        for budget in [1, 2, 3, 5, 8] {
            let cfg = ControllerConfig {
                work_budget: budget,
                ..quick_cfg(LadderPolicy::Repair)
            };
            let out = run(&inst, &plan, &cfg).unwrap();
            assert_eq!(out.report.invariant_violations, 0, "budget {budget}");
            assert!(
                out.report.epochs.iter().any(|e| e.degraded),
                "budget {budget} should force degradation"
            );
        }
    }

    #[test]
    fn full_policy_rebuilds_on_every_event_epoch() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: a(2),
            down_at_us: 3_000,
            up_at_us: Some(7_000),
        });
        let out = run(&inst, &plan, &quick_cfg(LadderPolicy::Full)).unwrap();
        let r = &out.report;
        assert_eq!(r.epochs[3].path, SolvePath::Full);
        assert_eq!(r.epochs[7].path, SolvePath::Full);
        assert_eq!(r.epochs[4].path, SolvePath::Idle);
        assert_eq!(r.invariant_violations, 0);
        assert_eq!(r.final_satisfied, 5, "everyone is back after recovery");
    }

    #[test]
    fn runs_are_deterministic() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.seed = 99;
        plan.churn.jump_prob = 0.6;
        plan.churn.departure_prob = 0.2;
        plan.random_ap_failures = Some(mcast_faults::RandomApFailures {
            failure_prob: 0.5,
            mean_downtime_us: 2_000,
        });
        for policy in LadderPolicy::ALL {
            let x = run(&inst, &plan, &quick_cfg(policy)).unwrap();
            let y = run(&inst, &plan, &quick_cfg(policy)).unwrap();
            assert_eq!(x, y, "{policy:?}");
            assert_eq!(x.report.invariant_violations, 0, "{policy:?}");
        }
    }
}
