//! The lock-step runtime: the epoch loop over a compiled fault
//! timeline. The per-epoch mechanics (event application, ladder
//! execution, metrics, audit) live in [`crate::engine`], shared with
//! the event-driven service.

use mcast_core::{Association, Instance, Objective};
use mcast_faults::{FaultEventKind, FaultPlan};

use crate::engine::EpochEngine;
use crate::ladder::LadderPolicy;
use crate::report::ControllerReport;
use crate::state::NetworkState;

/// Configuration of a controller run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Which objective the full-solve and repair rungs optimize. Budgets
    /// are hard admission constraints under [`Objective::Mnu`] only —
    /// BLA/MLA are the paper's serve-everyone objectives, where the
    /// controller never sheds a reachable user.
    pub objective: Objective,
    /// The highest ladder rung the controller may use per epoch.
    pub policy: LadderPolicy,
    /// Epoch length in microseconds of the fault-timeline clock.
    pub epoch_us: u64,
    /// How many epochs to run; the fault horizon is
    /// `epoch_us × n_epochs`.
    pub n_epochs: u64,
    /// Per-epoch work budget in deterministic work units
    /// ([`WorkMeter`]); `0` = unlimited.
    pub work_budget: u64,
    /// Run the from-scratch ledger oracle check every epoch even in
    /// release builds (debug builds always run it).
    pub audit_oracle: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            objective: Objective::Mnu,
            policy: LadderPolicy::Repair,
            epoch_us: 100_000,
            n_epochs: 30,
            work_budget: 0,
            audit_oracle: false,
        }
    }
}

/// Everything a controller run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerOutcome {
    /// The serializable disruption-metrics report.
    pub report: ControllerReport,
    /// The association when the run ended (not serialized into the
    /// report — it is large; tests and callers who need it get it here).
    pub association: Association,
}

/// Runs the online controller over `inst`, ingesting `plan`'s compiled
/// fault timeline, for [`ControllerConfig::n_epochs`] epochs.
///
/// The plan is [validated](FaultPlan::validate) against the instance
/// and horizon first. The run is a pure function of
/// `(inst, plan, cfg)` — all randomness was resolved when the plan
/// compiled, and time budgets are counted in deterministic work units —
/// so two identical calls produce byte-identical reports.
pub fn run(
    inst: &Instance,
    plan: &FaultPlan,
    cfg: &ControllerConfig,
) -> Result<ControllerOutcome, String> {
    if cfg.epoch_us == 0 {
        return Err("epoch_us must be positive".to_string());
    }
    if cfg.n_epochs == 0 {
        return Err("n_epochs must be positive".to_string());
    }
    let horizon_us = cfg
        .epoch_us
        .checked_mul(cfg.n_epochs)
        .ok_or_else(|| "epoch_us × n_epochs overflows the clock".to_string())?;
    plan.validate(inst.n_aps(), inst.n_users(), horizon_us)
        .map_err(|e| format!("invalid fault plan: {e}"))?;

    let mut timeline = plan.compile(inst.n_aps(), inst.n_users(), horizon_us);
    let keep = plan.link_keep_prob();

    let mut engine = EpochEngine::new(
        inst,
        cfg,
        keep,
        NetworkState::new(inst.n_aps(), inst.n_users()),
    );

    for epoch in 0..cfg.n_epochs {
        // Events scheduled inside this epoch's window apply at its start;
        // the rung that follows is the controller's response to them.
        let window_end = (epoch + 1) * cfg.epoch_us - 1;
        engine.begin_epoch();

        let mut events = 0u64;
        while let Some(ev) = timeline.pop_due(window_end) {
            events += 1;
            match ev.kind {
                FaultEventKind::ApUp(a) => engine.ap_up(a),
                FaultEventKind::ApDown(a) => engine.ap_down(a),
                FaultEventKind::UserDepart(u) => engine.user_leave(u),
                FaultEventKind::UserJump { user, seed } => engine.link_reroll(user, seed),
            }
        }

        engine.run_epoch(epoch, events, 0, None);
    }

    Ok(engine.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::SolvePath;
    use mcast_core::examples_paper::{a, figure1_instance, u};
    use mcast_core::{solve_bla, solve_mla, solve_mnu_with, solve_ssa, ApId, Kbps, MnuConfig};
    use mcast_faults::{ApOutage, UserDeparture};

    fn quick_cfg(policy: LadderPolicy) -> ControllerConfig {
        ControllerConfig {
            policy,
            n_epochs: 10,
            epoch_us: 1_000,
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn rejects_invalid_plans_and_configs() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: ApId(99),
            down_at_us: 0,
            up_at_us: None,
        });
        let err = run(&inst, &plan, &quick_cfg(LadderPolicy::Repair)).unwrap_err();
        assert!(err.contains("unknown AP 99"), "{err}");

        let cfg = ControllerConfig {
            n_epochs: 0,
            ..ControllerConfig::default()
        };
        assert!(run(&inst, &FaultPlan::none(), &cfg).is_err());
    }

    #[test]
    fn no_faults_solves_once_then_idles() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let out = run(&inst, &FaultPlan::none(), &quick_cfg(LadderPolicy::Repair)).unwrap();
        let r = &out.report;
        assert_eq!(r.invariant_violations, 0);
        assert_eq!(r.epochs[0].path, SolvePath::Full);
        assert!(r.epochs[1..].iter().all(|e| e.path == SolvePath::Idle));
        assert_eq!(r.handoffs, 0);
        assert_eq!(r.final_satisfied, 5);
        assert_eq!(r.reconvergence_epochs.n, 0, "no disruptions happened");
    }

    #[test]
    fn epoch0_ssa_only_matches_ssa_baseline() {
        // At 3 Mbps budgets bind: the online SSA rung must reproduce the
        // one-shot SSA baseline exactly (strongest AP, budget check, no
        // second choice).
        let inst = figure1_instance(Kbps::from_mbps(3));
        let out = run(&inst, &FaultPlan::none(), &quick_cfg(LadderPolicy::SsaOnly)).unwrap();
        let ssa = solve_ssa(&inst, Objective::Mnu);
        assert_eq!(out.association, ssa.association);
        assert_eq!(out.report.invariant_violations, 0);
        assert!(out.report.shed > 0, "3 Mbps SSA sheds blocked users");
    }

    #[test]
    fn outage_orphans_are_repaired_and_recovery_readmits() {
        // a1 down in epoch 2, up in epoch 6. At 3 Mbps u1/u2 only reach
        // a1: they are shed while it is down and readmitted when it
        // recovers.
        let inst = figure1_instance(Kbps::from_mbps(3));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: a(1),
            down_at_us: 2_000,
            up_at_us: Some(6_000),
        });
        let out = run(&inst, &plan, &quick_cfg(LadderPolicy::Repair)).unwrap();
        let r = &out.report;
        assert_eq!(r.invariant_violations, 0);
        assert_eq!(r.epochs[2].path, SolvePath::Repair);
        assert!(r.epochs[2].shed > 0, "a1's captive users get shed");
        assert!(r.epochs[6].readmitted > 0, "recovery readmits them");
        assert!(r.coverage_loss_user_epochs > 0);
        assert_eq!(r.reconvergence_epochs.unsettled, 0);
    }

    #[test]
    fn departures_free_load_without_violations() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.churn.departures.push(UserDeparture {
            user: u(3),
            at_us: 3_000,
        });
        for policy in LadderPolicy::ALL {
            let out = run(&inst, &plan, &quick_cfg(policy)).unwrap();
            assert_eq!(out.report.invariant_violations, 0, "{policy:?}");
            assert_eq!(out.association.ap_of(u(3)), None, "{policy:?}");
            assert_eq!(out.report.final_satisfied, 4, "{policy:?}");
        }
    }

    #[test]
    fn unfaulted_full_epoch_matches_one_shot_solvers() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        for (objective, expect) in [
            (
                Objective::Mnu,
                solve_mnu_with(&inst, &MnuConfig { augment: true }).association,
            ),
            (Objective::Bla, solve_bla(&inst).unwrap().association),
            (Objective::Mla, solve_mla(&inst).unwrap().association),
        ] {
            let cfg = ControllerConfig {
                objective,
                ..quick_cfg(LadderPolicy::Full)
            };
            let out = run(&inst, &FaultPlan::none(), &cfg).unwrap();
            assert_eq!(out.association, expect, "{objective}");
            assert_eq!(out.report.invariant_violations, 0, "{objective}");
        }
    }

    #[test]
    fn tiny_work_budget_degrades_but_never_violates() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: a(1),
            down_at_us: 2_000,
            up_at_us: Some(5_000),
        });
        for budget in [1, 2, 3, 5, 8] {
            let cfg = ControllerConfig {
                work_budget: budget,
                ..quick_cfg(LadderPolicy::Repair)
            };
            let out = run(&inst, &plan, &cfg).unwrap();
            assert_eq!(out.report.invariant_violations, 0, "budget {budget}");
            assert!(
                out.report.epochs.iter().any(|e| e.degraded),
                "budget {budget} should force degradation"
            );
        }
    }

    #[test]
    fn full_policy_rebuilds_on_every_event_epoch() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.ap_outages.push(ApOutage {
            ap: a(2),
            down_at_us: 3_000,
            up_at_us: Some(7_000),
        });
        let out = run(&inst, &plan, &quick_cfg(LadderPolicy::Full)).unwrap();
        let r = &out.report;
        assert_eq!(r.epochs[3].path, SolvePath::Full);
        assert_eq!(r.epochs[7].path, SolvePath::Full);
        assert_eq!(r.epochs[4].path, SolvePath::Idle);
        assert_eq!(r.invariant_violations, 0);
        assert_eq!(r.final_satisfied, 5, "everyone is back after recovery");
    }

    #[test]
    fn runs_are_deterministic() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut plan = FaultPlan::none();
        plan.seed = 99;
        plan.churn.jump_prob = 0.6;
        plan.churn.departure_prob = 0.2;
        plan.random_ap_failures = Some(mcast_faults::RandomApFailures {
            failure_prob: 0.5,
            mean_downtime_us: 2_000,
        });
        for policy in LadderPolicy::ALL {
            let x = run(&inst, &plan, &quick_cfg(policy)).unwrap();
            let y = run(&inst, &plan, &quick_cfg(policy)).unwrap();
            assert_eq!(x, y, "{policy:?}");
            assert_eq!(x.report.invariant_violations, 0, "{policy:?}");
        }
    }
}
