//! Live network state: which APs are up, which users are present, and
//! which candidate links currently exist.

use std::collections::HashSet;

use mcast_core::{ApId, Instance, UserId};

/// The controller's view of the network's health, updated from fault
/// events.
///
/// Mirrors the simulator's fault semantics exactly — same user-major
/// link-mask meaning, same ChaCha8 per-jump re-roll — so a fault plan
/// means the same thing to both runtimes. The mask itself is stored
/// sparsely (only *masked* links, normally a tiny fraction): a dense
/// `users × APs` bool matrix is 40 GB at the scale-suite size
/// (2 000 000 × 20 000), while the sparse set is O(currently-masked)
/// and empty on a fault-free run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkState {
    down: Vec<bool>,
    gone: Vec<bool>,
    /// The candidate links currently *masked* (out of range), as
    /// `(user index, AP index)`. Links never touched by a jump are ok
    /// by definition, so absence means ok — non-candidate pairs are
    /// never inserted.
    masked: HashSet<(u32, u32)>,
    downs: usize,
    gones: usize,
}

impl NetworkState {
    /// A pristine network: everything up, everyone present, all links ok.
    pub fn new(n_aps: usize, n_users: usize) -> NetworkState {
        NetworkState {
            down: vec![false; n_aps],
            gone: vec![false; n_users],
            masked: HashSet::new(),
            downs: 0,
            gones: 0,
        }
    }

    /// An empty service: every AP up, every link ok, but **no user
    /// present yet**. The event-driven service starts here and admits
    /// users as their join events arrive; once everyone has joined (and
    /// nothing else broke) the state is pristine, so epoch-0 batched
    /// admission takes the same full-solve fast path as the lock-step
    /// runtime.
    pub fn absent(n_aps: usize, n_users: usize) -> NetworkState {
        NetworkState {
            down: vec![false; n_aps],
            gone: vec![true; n_users],
            masked: HashSet::new(),
            downs: 0,
            gones: n_users,
        }
    }

    /// Marks user `u` present (a join). Idempotent; returns `true` on
    /// the transition. The inverse of [`NetworkState::depart`] — a user
    /// who left can rejoin with a fresh join event.
    pub fn join(&mut self, u: UserId) -> bool {
        if !self.gone[u.index()] {
            return false;
        }
        self.gone[u.index()] = false;
        self.gones -= 1;
        true
    }

    /// True if nothing has ever deviated from the pristine state — no AP
    /// down, no user departed, no candidate link lost. On a pristine
    /// network the effective instance *is* the original instance.
    pub fn pristine(&self) -> bool {
        self.downs == 0 && self.gones == 0 && self.masked.is_empty()
    }

    /// True if AP `a` is currently down.
    pub fn is_down(&self, a: ApId) -> bool {
        self.down[a.index()]
    }

    /// Marks AP `a` down. Idempotent; returns `true` if this call
    /// transitioned it (callers evict the AP's users exactly once).
    pub fn set_down(&mut self, a: ApId) -> bool {
        if self.down[a.index()] {
            return false;
        }
        self.down[a.index()] = true;
        self.downs += 1;
        true
    }

    /// Marks AP `a` up again. Idempotent.
    pub fn set_up(&mut self, a: ApId) {
        if self.down[a.index()] {
            self.down[a.index()] = false;
            self.downs -= 1;
        }
    }

    /// True if user `u` has not departed.
    pub fn is_present(&self, u: UserId) -> bool {
        !self.gone[u.index()]
    }

    /// Marks user `u` departed for good. Idempotent; returns `true` on
    /// the transition.
    pub fn depart(&mut self, u: UserId) -> bool {
        if self.gone[u.index()] {
            return false;
        }
        self.gone[u.index()] = true;
        self.gones += 1;
        true
    }

    /// True if the candidate link `u — a` currently exists.
    pub fn link_ok(&self, u: UserId, a: ApId) -> bool {
        !self.masked.contains(&(u.index() as u32, a.index() as u32))
    }

    /// True if `a` is a usable target for `u` right now: up and in range.
    /// (Candidacy itself — does the instance have the link at all — is
    /// the caller's concern.)
    pub fn allowed(&self, u: UserId, a: ApId) -> bool {
        !self.down[a.index()] && self.link_ok(u, a)
    }

    /// Applies a position jump: re-rolls every candidate link of `u`
    /// with survival probability `keep`, exactly as the simulator does
    /// (same RNG, same seed, same draw order), so a shared fault plan
    /// produces the same post-jump topology in both runtimes.
    pub fn roll_jump(&mut self, inst: &Instance, u: UserId, seed: u64, keep: f64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for &(a, _) in inst.candidate_aps(u) {
            let key = (u.index() as u32, a.index() as u32);
            if rng.gen::<f64>() < keep {
                self.masked.remove(&key);
            } else {
                self.masked.insert(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::examples_paper::{a, figure1_instance, u};
    use mcast_core::Kbps;

    #[test]
    fn pristine_until_something_breaks() {
        let mut s = NetworkState::new(3, 4);
        assert!(s.pristine());
        assert!(s.set_down(ApId(1)));
        assert!(!s.pristine());
        assert!(!s.set_down(ApId(1)), "second down is not a transition");
        s.set_up(ApId(1));
        assert!(s.pristine(), "recovery restores pristinity");

        assert!(s.depart(UserId(2)));
        assert!(!s.depart(UserId(2)));
        assert!(!s.pristine(), "departures mask until a rejoin");
        assert!(s.join(UserId(2)));
        assert!(!s.join(UserId(2)), "second join is not a transition");
        assert!(s.pristine(), "a rejoin restores pristinity");
    }

    #[test]
    fn absent_state_fills_up_as_users_join() {
        let mut s = NetworkState::absent(2, 3);
        assert!(!s.pristine());
        for u in 0..3 {
            assert!(!s.is_present(UserId(u)));
            assert!(s.join(UserId(u)));
        }
        assert!(s.pristine(), "everyone joined, nothing broken");
    }

    #[test]
    fn allowed_requires_up_and_in_range() {
        let mut s = NetworkState::new(2, 2);
        assert!(s.allowed(UserId(0), ApId(1)));
        s.set_down(ApId(1));
        assert!(!s.allowed(UserId(0), ApId(1)));
        assert!(s.allowed(UserId(0), ApId(0)));
    }

    #[test]
    fn roll_jump_is_deterministic_and_tracks_mask_count() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut s1 = NetworkState::new(inst.n_aps(), inst.n_users());
        let mut s2 = NetworkState::new(inst.n_aps(), inst.n_users());
        s1.roll_jump(&inst, u(5), 42, 0.5);
        s2.roll_jump(&inst, u(5), 42, 0.5);
        assert_eq!(s1, s2);
        // Re-rolling back to all-ok restores pristinity.
        s1.roll_jump(&inst, u(5), 7, 1.0);
        assert!(s1.pristine());
        // keep = 0 masks every candidate link of the user.
        s1.roll_jump(&inst, u(5), 7, 0.0);
        assert!(!s1.link_ok(u(5), a(1)));
        assert!(!s1.link_ok(u(5), a(2)));
        assert!(!s1.pristine());
    }

    #[test]
    fn jump_only_touches_candidate_links() {
        // u1 (id 0) is only a candidate of a1: a jump with keep = 0 must
        // leave its (non-candidate) a2 entry alone.
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut s = NetworkState::new(inst.n_aps(), inst.n_users());
        s.roll_jump(&inst, u(1), 3, 0.0);
        assert!(!s.link_ok(u(1), a(1)));
        assert!(s.link_ok(u(1), a(2)));
    }
}
