//! Node placement models.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geometry::Point;

/// How a set of nodes is placed over the `width × height` area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Independently uniform over the area (the paper's model).
    Uniform,
    /// A near-square grid with the given per-node jitter (m). Models
    /// planned AP deployments.
    Grid {
        /// Uniform jitter applied to each grid position, in meters.
        jitter_m: f64,
    },
    /// Gaussian clusters around uniformly drawn centers. Models hotspot
    /// user crowds (stresses MNU).
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Standard deviation of the offsets from the center (m).
        sigma_m: f64,
    },
}

impl Placement {
    /// Draws `n` positions within `[0, width] × [0, height]`.
    pub fn sample<R: Rng>(&self, n: usize, width: f64, height: f64, rng: &mut R) -> Vec<Point> {
        let clamp = |p: Point| Point {
            x: p.x.clamp(0.0, width),
            y: p.y.clamp(0.0, height),
        };
        match self {
            Placement::Uniform => (0..n)
                .map(|_| Point::new(rng.gen::<f64>() * width, rng.gen::<f64>() * height))
                .collect(),
            Placement::Grid { jitter_m } => {
                let cols = (n as f64 * width / height).sqrt().ceil().max(1.0) as usize;
                let rows = n.div_ceil(cols);
                let dx = width / cols as f64;
                let dy = height / rows as f64;
                (0..n)
                    .map(|i| {
                        let (r, c) = (i / cols, i % cols);
                        let jitter = |rng: &mut R| (rng.gen::<f64>() * 2.0 - 1.0) * jitter_m;
                        clamp(Point::new(
                            (c as f64 + 0.5) * dx + jitter(rng),
                            (r as f64 + 0.5) * dy + jitter(rng),
                        ))
                    })
                    .collect()
            }
            Placement::Clustered { clusters, sigma_m } => {
                let k = (*clusters).max(1);
                let centers: Vec<Point> = (0..k)
                    .map(|_| Point::new(rng.gen::<f64>() * width, rng.gen::<f64>() * height))
                    .collect();
                (0..n)
                    .map(|_| {
                        let c = &centers[rng.gen_range(0..k)];
                        // Box–Muller for a Gaussian offset.
                        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        let u2: f64 = rng.gen();
                        let r = (-2.0 * u1.ln()).sqrt() * sigma_m;
                        let theta = 2.0 * std::f64::consts::PI * u2;
                        clamp(Point::new(c.x + r * theta.cos(), c.y + r * theta.sin()))
                    })
                    .collect()
            }
        }
    }

    /// Draws exactly the position `sample(1, ...)` would return, consuming
    /// the RNG identically. Uniform placement — the inner loop of
    /// rejection-sampled user placement — avoids the per-draw `Vec`
    /// allocation; the other models fall back to [`Placement::sample`]
    /// because their single-draw geometry is entangled with `n`.
    pub fn sample_one<R: Rng>(&self, width: f64, height: f64, rng: &mut R) -> Point {
        match self {
            Placement::Uniform => Point::new(rng.gen::<f64>() * width, rng.gen::<f64>() * height),
            _ => self.sample(1, width, height, rng)[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_in_bounds_and_is_seed_deterministic() {
        let pts1 = Placement::Uniform.sample(100, 500.0, 300.0, &mut rng(1));
        let pts2 = Placement::Uniform.sample(100, 500.0, 300.0, &mut rng(1));
        let pts3 = Placement::Uniform.sample(100, 500.0, 300.0, &mut rng(2));
        assert_eq!(pts1, pts2);
        assert_ne!(pts1, pts3);
        for p in &pts1 {
            assert!((0.0..=500.0).contains(&p.x));
            assert!((0.0..=300.0).contains(&p.y));
        }
    }

    #[test]
    fn grid_covers_area_roughly_evenly() {
        let pts = Placement::Grid { jitter_m: 0.0 }.sample(16, 400.0, 400.0, &mut rng(3));
        assert_eq!(pts.len(), 16);
        // 4x4 grid: distinct positions, spaced 100 m.
        assert!((pts[0].x - 50.0).abs() < 1e-9);
        assert!((pts[1].x - 150.0).abs() < 1e-9);
        for p in &pts {
            assert!((0.0..=400.0).contains(&p.x) && (0.0..=400.0).contains(&p.y));
        }
    }

    #[test]
    fn clustered_concentrates_users() {
        let pts = Placement::Clustered {
            clusters: 1,
            sigma_m: 10.0,
        }
        .sample(200, 1000.0, 1000.0, &mut rng(4));
        // With one tight cluster the spread must be far below uniform.
        let cx = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        let cy = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
        let mean_dist = pts
            .iter()
            .map(|p| p.distance(&Point::new(cx, cy)))
            .sum::<f64>()
            / pts.len() as f64;
        assert!(mean_dist < 50.0, "mean distance {mean_dist} too spread");
        for p in &pts {
            assert!((0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y));
        }
    }

    #[test]
    fn sample_one_matches_sample_of_one() {
        for placement in [
            Placement::Uniform,
            Placement::Grid { jitter_m: 5.0 },
            Placement::Clustered {
                clusters: 3,
                sigma_m: 40.0,
            },
        ] {
            let mut r1 = rng(9);
            let mut r2 = rng(9);
            for _ in 0..10 {
                assert_eq!(
                    placement.sample_one(100.0, 80.0, &mut r1),
                    placement.sample(1, 100.0, 80.0, &mut r2)[0],
                    "{placement:?} diverged from sample(1)"
                );
            }
        }
    }

    #[test]
    fn requested_count_always_honored() {
        for placement in [
            Placement::Uniform,
            Placement::Grid { jitter_m: 5.0 },
            Placement::Clustered {
                clusters: 3,
                sigma_m: 40.0,
            },
        ] {
            for n in [0, 1, 7, 33] {
                assert_eq!(placement.sample(n, 100.0, 100.0, &mut rng(5)).len(), n);
            }
        }
    }
}
