//! Scenario generation for the WLAN multicast association evaluation.
//!
//! The paper evaluates over "a 1.2 km² area with up to 200 APs and 400
//! users randomly located in the area", 802.11a rates with the Table 1
//! distance thresholds, a 200 m radio range, a 0.9 per-AP multicast
//! budget, and 5 multicast sessions by default, averaging 40 random
//! scenarios. This crate turns a declarative, seeded [`ScenarioConfig`]
//! into a validated `mcast_core::Instance` plus the node coordinates
//! (which the `mcast-sim` discrete-event simulator needs for its radio
//! model).
//!
//! Determinism: all randomness flows from a single `u64` seed through
//! ChaCha8, so every scenario is exactly reproducible across platforms.
//!
//! # Example
//!
//! ```
//! use mcast_topology::ScenarioConfig;
//!
//! let scenario = ScenarioConfig::paper_default().with_seed(7).generate();
//! assert_eq!(scenario.instance.n_aps(), 200);
//! assert_eq!(scenario.instance.n_users(), 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod grid;
pub mod mcb;
pub mod phy;
mod placement;
pub mod power;
mod scenario;
mod tiles;

pub use geometry::Point;
pub use grid::SpatialGrid;
pub use mcb::{read_mcb, read_mcb_with_limits, write_mcb, MCB_MAGIC};
pub use phy::PathLossModel;
pub use placement::Placement;
pub use power::{instance_with_power, optimize_power, PowerOutcome};
pub use scenario::{validate_scenario, Scenario, ScenarioConfig, ScenarioError, SessionPopularity};
pub use tiles::tile_partition;
