//! Planar geometry primitives.

use serde::{Deserialize, Serialize};

/// A point on the deployment plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Point::new(1.5, -2.25);
        let json = serde_json::to_string(&p).unwrap();
        let back: Point = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
