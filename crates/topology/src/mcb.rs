//! `.mcb` — the compact binary scenario format (`mcast binary, v1`).
//!
//! JSON is the interchange format, but at million-user scale the sparse
//! JSON wire still renders every link as text through an in-memory value
//! tree. `.mcb` serializes the same [`Scenario`] as flat little-endian
//! arrays — a direct dump of the CSR arenas — streamed through a small
//! constant-size buffer in both directions, so writing or loading a
//! 2M-user scenario never allocates more than the arenas themselves.
//!
//! ## Layout
//!
//! A 4-byte magic (`MCB` + format version byte) followed by sections,
//! each framed exactly like the event journal's records
//! (`crates/events`): a tag byte, a little-endian `u64` payload length,
//! the payload, and the payload's CRC-32 (same polynomial and
//! reflection as [`mcast_events::journal::crc32`] — the reader
//! cross-checks with that very function). Sections appear in a fixed
//! order and end with an empty `END` section:
//!
//! | tag | payload |
//! |-----|---------|
//! | 1 `CONFIG`   | the [`ScenarioConfig`] as JSON bytes |
//! | 2 `SESSIONS` | `u32` stream rate (kbps) per session |
//! | 3 `BUDGETS`  | `i64` numerator, `i64` denominator per AP |
//! | 4 `RATES`    | `u32` per supported rate |
//! | 5 `POLICY`   | one byte: 0 = multi-rate, 1 = basic-only |
//! | 6 `USERS`    | `u32` session index per user |
//! | 7 `USER_OFF` | `u32` × (users + 1), the CSR row offsets |
//! | 8 `LINKS`    | `u32` AP, `u32` rate, `i64` signal per link |
//! | 9 `AP_POS`   | `f64` x, `f64` y per AP |
//! | 10 `USER_POS`| `f64` x, `f64` y per user |
//! | 255 `END`    | empty |
//!
//! Signals use `i64::MIN` as the "absent" sentinel, exactly as the CSR
//! arena does in memory. The reader validates every CRC, then rebuilds
//! the instance through [`Instance::from_csr`], which re-checks all
//! structural invariants — a corrupted-but-CRC-valid file still cannot
//! produce an invalid [`Scenario`].

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use mcast_core::{ApId, Instance, Kbps, Load, RatePolicy, SessionId, SessionSpec, UserSpec};
use mcast_events::{check_declared_len, DecodeError, DecodeErrorKind, DecodeLimits};

use crate::geometry::Point;
use crate::scenario::{Scenario, ScenarioConfig};

/// File magic: `MCB` plus the format version byte.
pub const MCB_MAGIC: [u8; 4] = *b"MCB\x01";

const TAG_CONFIG: u8 = 1;
const TAG_SESSIONS: u8 = 2;
const TAG_BUDGETS: u8 = 3;
const TAG_RATES: u8 = 4;
const TAG_POLICY: u8 = 5;
const TAG_USERS: u8 = 6;
const TAG_USER_OFF: u8 = 7;
const TAG_LINKS: u8 = 8;
const TAG_AP_POS: u8 = 9;
const TAG_USER_POS: u8 = 10;
const TAG_END: u8 = 255;

/// Incremental CRC-32 with the journal's polynomial (IEEE 802.3,
/// reflected): feeding the whole payload at once yields exactly
/// [`mcast_events::journal::crc32`] — pinned by a unit test below — but
/// this form lets the writer checksum a section while streaming it.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Crc32 {
        Crc32(!0)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u32::from(b);
            for _ in 0..8 {
                let mask = (self.0 & 1).wrapping_neg();
                self.0 = (self.0 >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

/// One framed section going out: accumulates the CRC as payload bytes
/// pass through, so the writer never holds a section in memory.
struct SectionWriter<'a, W: Write> {
    out: &'a mut W,
    crc: Crc32,
    written: u64,
    declared: u64,
}

impl<'a, W: Write> SectionWriter<'a, W> {
    fn begin(out: &'a mut W, tag: u8, len: u64) -> std::io::Result<SectionWriter<'a, W>> {
        out.write_all(&[tag])?;
        out.write_all(&len.to_le_bytes())?;
        Ok(SectionWriter {
            out,
            crc: Crc32::new(),
            written: 0,
            declared: len,
        })
    }

    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.crc.update(bytes);
        self.written += bytes.len() as u64;
        self.out.write_all(bytes)
    }

    fn end(self) -> std::io::Result<()> {
        assert_eq!(
            self.written, self.declared,
            "section length mismatch (writer bug)"
        );
        self.out.write_all(&self.crc.finish().to_le_bytes())
    }
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> String {
    format!("{what} {}: {e}", path.display())
}

/// Writes `scenario` to `path` in the `.mcb` format, atomically: the
/// bytes stream into a same-directory temp file (fsynced), which is then
/// renamed over the destination — the same protocol as the event
/// journal's `atomic_write`, without ever materializing the file in
/// memory.
///
/// # Errors
///
/// I/O failures, or a budget whose reduced fraction overflows `i64`
/// (unreachable for generated scenarios; budgets are permille ratios).
pub fn write_mcb(scenario: &Scenario, path: &Path) -> Result<(), String> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "cannot create", &e))?;
    let tmp = dir.join(format!(
        ".{}.tmp",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("scenario.mcb")
    ));
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err(&tmp, "cannot create", &e))?;
    let mut w = BufWriter::with_capacity(1 << 20, file);
    write_mcb_into(scenario, &mut w).map_err(|e| io_err(&tmp, "cannot write", &e))?;
    let file = w
        .into_inner()
        .map_err(|e| io_err(&tmp, "cannot flush", &e.into_error()))?;
    file.sync_all()
        .map_err(|e| io_err(&tmp, "cannot sync", &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err(path, "cannot rename into", &e))?;
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn write_mcb_into<W: Write>(scenario: &Scenario, w: &mut W) -> std::io::Result<()> {
    let (sessions, users, budgets, user_off, user_adj, user_sig, rates, rate_policy) =
        scenario.instance.csr_parts();

    w.write_all(&MCB_MAGIC)?;

    let config_json = serde_json::to_string(&scenario.config)
        .map_err(|e| std::io::Error::other(format!("config serialization: {e}")))?;
    let mut s = SectionWriter::begin(w, TAG_CONFIG, config_json.len() as u64)?;
    s.put(config_json.as_bytes())?;
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_SESSIONS, 4 * sessions.len() as u64)?;
    for spec in sessions {
        s.put(&spec.rate.0.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_BUDGETS, 16 * budgets.len() as u64)?;
    for b in budgets {
        let num = i64::try_from(b.numer())
            .map_err(|_| std::io::Error::other("budget numerator overflows i64"))?;
        let den = i64::try_from(b.denom())
            .map_err(|_| std::io::Error::other("budget denominator overflows i64"))?;
        s.put(&num.to_le_bytes())?;
        s.put(&den.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_RATES, 4 * rates.len() as u64)?;
    for r in rates {
        s.put(&r.0.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_POLICY, 1)?;
    s.put(&[match rate_policy {
        RatePolicy::MultiRate => 0,
        RatePolicy::BasicOnly => 1,
    }])?;
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_USERS, 4 * users.len() as u64)?;
    for u in users {
        s.put(&u.session.0.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_USER_OFF, 4 * user_off.len() as u64)?;
    for off in user_off {
        s.put(&off.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_LINKS, 16 * user_adj.len() as u64)?;
    for (&(a, r), &sig) in user_adj.iter().zip(user_sig) {
        s.put(&a.0.to_le_bytes())?;
        s.put(&r.0.to_le_bytes())?;
        s.put(&sig.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_AP_POS, 16 * scenario.ap_positions.len() as u64)?;
    for p in &scenario.ap_positions {
        s.put(&p.x.to_le_bytes())?;
        s.put(&p.y.to_le_bytes())?;
    }
    s.end()?;

    let mut s = SectionWriter::begin(w, TAG_USER_POS, 16 * scenario.user_positions.len() as u64)?;
    for p in &scenario.user_positions {
        s.put(&p.x.to_le_bytes())?;
        s.put(&p.y.to_le_bytes())?;
    }
    s.end()?;

    let s = SectionWriter::begin(w, TAG_END, 0)?;
    s.end()?;
    w.flush()
}

/// The cursor a `.mcb` read threads through every section: the absolute
/// byte offset (for [`DecodeError`] provenance), the total file length
/// (so a declared section length is checked against what actually
/// remains — the length-prefix-inflation guard), and the caps.
struct McbCursor {
    offset: u64,
    file_len: u64,
    limits: DecodeLimits,
}

/// One framed section coming in: hands the payload to `decode` in
/// bounded chunks while accumulating the CRC, then checks it against the
/// trailer — so even the link arena of a million-user file flows through
/// a 1 MiB buffer. The declared length is validated against the
/// remaining file bytes *before* any payload is read, so a forged
/// header is a named error, not a stall or an allocation.
fn read_section<R: Read>(
    r: &mut R,
    cur: &mut McbCursor,
    expect_tag: u8,
    mut decode: impl FnMut(&[u8]) -> Result<(), String>,
) -> Result<(), DecodeError> {
    let header_off = cur.offset;
    let mut head = [0u8; 9];
    r.read_exact(&mut head).map_err(|e| {
        DecodeError::new(
            DecodeErrorKind::Truncated,
            header_off,
            format!("truncated header of section {expect_tag}: {e}"),
        )
    })?;
    let tag = head[0];
    if tag != expect_tag {
        return Err(DecodeError::new(
            DecodeErrorKind::Framing,
            header_off,
            format!("expected section {expect_tag}, found {tag}"),
        ));
    }
    let len = u64::from_le_bytes(head[1..9].try_into().expect("8 bytes"));
    cur.offset += 9;
    // Payload plus its 4-byte CRC trailer must fit in what remains.
    let remaining = cur.file_len.saturating_sub(cur.offset).saturating_sub(4);
    check_declared_len(
        len,
        remaining,
        cur.limits.max_section_bytes,
        header_off,
        &format!("section {tag}"),
    )?;
    let mut crc = Crc32::new();
    let mut remaining = len;
    let mut buf = vec![0u8; (1 << 20).min(len.max(1)) as usize];
    while remaining > 0 {
        let take = remaining.min(buf.len() as u64) as usize;
        r.read_exact(&mut buf[..take]).map_err(|e| {
            DecodeError::new(
                DecodeErrorKind::Truncated,
                cur.offset,
                format!("truncated payload of section {tag}: {e}"),
            )
        })?;
        crc.update(&buf[..take]);
        decode(&buf[..take])
            .map_err(|what| DecodeError::new(DecodeErrorKind::Framing, cur.offset, what))?;
        cur.offset += take as u64;
        remaining -= take as u64;
    }
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer).map_err(|e| {
        DecodeError::new(
            DecodeErrorKind::Truncated,
            cur.offset,
            format!("truncated checksum of section {tag}: {e}"),
        )
    })?;
    let got = crc.finish();
    let want = u32::from_le_bytes(trailer);
    if got != want {
        return Err(DecodeError::new(
            DecodeErrorKind::Checksum,
            cur.offset,
            format!("section {tag} checksum mismatch: computed {got:#010x}, stored {want:#010x}"),
        ));
    }
    cur.offset += 4;
    Ok(())
}

/// Collects a section whose payload is a flat array of fixed-size
/// records. Chunk boundaries land on record boundaries because the
/// buffer size is a multiple of every record size used here (1, 4, 16).
/// Allocation stays bounded by the declared length, which
/// [`read_section`] has already checked against the file's actual size.
fn read_records<R: Read, T>(
    r: &mut R,
    cur: &mut McbCursor,
    tag: u8,
    record: usize,
    mut parse: impl FnMut(&[u8]) -> T,
) -> Result<Vec<T>, DecodeError> {
    let mut out = Vec::new();
    read_section(r, cur, tag, |chunk| {
        if chunk.len() % record != 0 {
            return Err(format!("section {tag}: payload not a multiple of {record}"));
        }
        out.reserve(chunk.len() / record);
        for rec in chunk.chunks_exact(record) {
            out.push(parse(rec));
        }
        Ok(())
    })?;
    Ok(out)
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("4 bytes"))
}

fn le_i64(b: &[u8]) -> i64 {
    i64::from_le_bytes(b.try_into().expect("8 bytes"))
}

fn le_f64(b: &[u8]) -> f64 {
    f64::from_le_bytes(b.try_into().expect("8 bytes"))
}

/// Reads a `.mcb` file back into a [`Scenario`] with the default
/// [`DecodeLimits`].
///
/// # Errors
///
/// A typed [`DecodeError`] with byte-offset provenance: I/O failures, a
/// bad magic/version, framing/checksum/limit violations, or CSR content
/// [`Instance::from_csr`] rejects. Never panics and never allocates
/// beyond the file's actual size (declared lengths are checked against
/// the remaining bytes before being trusted).
pub fn read_mcb(path: &Path) -> Result<Scenario, DecodeError> {
    read_mcb_with_limits(path, DecodeLimits::default())
}

/// [`read_mcb`] with explicit [`DecodeLimits`], for tests that want to
/// watch the caps fire on small files.
///
/// # Errors
///
/// Like [`read_mcb`].
pub fn read_mcb_with_limits(path: &Path, limits: DecodeLimits) -> Result<Scenario, DecodeError> {
    let file_len = fs::metadata(path)
        .map_err(|e| DecodeError::io(path, &e))?
        .len();
    let file = File::open(path).map_err(|e| DecodeError::io(path, &e))?;
    let mut r = BufReader::with_capacity(1 << 20, file);
    let mut cur = McbCursor {
        offset: 0,
        file_len,
        limits,
    };

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(|e| {
        DecodeError::new(
            DecodeErrorKind::Truncated,
            0,
            format!("{}: file ends inside the 4-byte magic: {e}", path.display()),
        )
    })?;
    if magic != MCB_MAGIC {
        return Err(DecodeError::new(
            DecodeErrorKind::BadMagic,
            0,
            format!("{}: not an mcb file (magic {magic:02x?})", path.display()),
        ));
    }
    cur.offset = 4;

    let bad_value = |off: u64, what: String| DecodeError::new(DecodeErrorKind::BadValue, off, what);

    let config_off = cur.offset;
    let mut config_json = Vec::new();
    read_section(&mut r, &mut cur, TAG_CONFIG, |chunk| {
        config_json.extend_from_slice(chunk);
        Ok(())
    })?;
    let config_json = String::from_utf8(config_json)
        .map_err(|e| bad_value(config_off, format!("config not UTF-8: {e}")))?;
    let config: ScenarioConfig = serde_json::from_str(&config_json)
        .map_err(|e| bad_value(config_off, format!("bad embedded config: {e}")))?;

    let sessions: Vec<SessionSpec> =
        read_records(&mut r, &mut cur, TAG_SESSIONS, 4, |b| SessionSpec {
            rate: Kbps(le_u32(b)),
        })?;
    let budgets_off = cur.offset;
    let budgets: Vec<Load> = read_records(&mut r, &mut cur, TAG_BUDGETS, 16, |b| {
        (le_i64(&b[0..8]), le_i64(&b[8..16]))
    })?
    .into_iter()
    .enumerate()
    .map(|(a, (num, den))| {
        if den <= 0 {
            return Err(bad_value(
                budgets_off,
                format!("AP {a}: budget denominator {den} not positive"),
            ));
        }
        let num = u64::try_from(num)
            .map_err(|_| bad_value(budgets_off, format!("AP {a}: negative budget")))?;
        Ok(Load::from_ratio(num, den as u64))
    })
    .collect::<Result<_, DecodeError>>()?;
    let rates: Vec<Kbps> = read_records(&mut r, &mut cur, TAG_RATES, 4, |b| Kbps(le_u32(b)))?;
    let policy_off = cur.offset;
    let mut policy_byte = None;
    read_section(&mut r, &mut cur, TAG_POLICY, |chunk| {
        if let [b] = chunk {
            policy_byte = Some(*b);
            Ok(())
        } else {
            Err(format!(
                "policy section has {} bytes, wanted 1",
                chunk.len()
            ))
        }
    })?;
    let rate_policy = match policy_byte {
        Some(0) => RatePolicy::MultiRate,
        Some(1) => RatePolicy::BasicOnly,
        other => {
            return Err(bad_value(
                policy_off,
                format!("unknown rate policy byte {other:?}"),
            ))
        }
    };
    let users: Vec<UserSpec> = read_records(&mut r, &mut cur, TAG_USERS, 4, |b| UserSpec {
        session: SessionId(le_u32(b)),
    })?;
    let user_off: Vec<u32> = read_records(&mut r, &mut cur, TAG_USER_OFF, 4, le_u32)?;
    let mut user_adj: Vec<(ApId, Kbps)> = Vec::new();
    let mut user_sig: Vec<i64> = Vec::new();
    read_section(&mut r, &mut cur, TAG_LINKS, |chunk| {
        if chunk.len() % 16 != 0 {
            return Err("link section payload not a multiple of 16".into());
        }
        user_adj.reserve(chunk.len() / 16);
        user_sig.reserve(chunk.len() / 16);
        for rec in chunk.chunks_exact(16) {
            user_adj.push((ApId(le_u32(&rec[0..4])), Kbps(le_u32(&rec[4..8]))));
            user_sig.push(le_i64(&rec[8..16]));
        }
        Ok(())
    })?;
    let ap_positions: Vec<Point> = read_records(&mut r, &mut cur, TAG_AP_POS, 16, |b| Point {
        x: le_f64(&b[0..8]),
        y: le_f64(&b[8..16]),
    })?;
    let user_positions: Vec<Point> = read_records(&mut r, &mut cur, TAG_USER_POS, 16, |b| Point {
        x: le_f64(&b[0..8]),
        y: le_f64(&b[8..16]),
    })?;
    read_section(&mut r, &mut cur, TAG_END, |_| {
        Err("END section carries payload".into())
    })?;
    if cur.offset != file_len {
        return Err(DecodeError::new(
            DecodeErrorKind::Framing,
            cur.offset,
            format!(
                "{} trailing bytes after the END section",
                file_len - cur.offset
            ),
        ));
    }

    let instance = Instance::from_csr(
        sessions,
        users,
        budgets,
        user_off,
        user_adj,
        user_sig,
        rates,
        rate_policy,
    )
    .map_err(|e| bad_value(4, format!("{}: {e}", path.display())))?;
    if ap_positions.len() != instance.n_aps() {
        return Err(bad_value(
            4,
            format!(
                "{}: {} AP positions for {} APs",
                path.display(),
                ap_positions.len(),
                instance.n_aps()
            ),
        ));
    }
    if user_positions.len() != instance.n_users() {
        return Err(bad_value(
            4,
            format!(
                "{}: {} user positions for {} users",
                path.display(),
                user_positions.len(),
                instance.n_users()
            ),
        ));
    }
    Ok(Scenario {
        instance,
        ap_positions,
        user_positions,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SessionPopularity;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mcb_test_{}_{name}", std::process::id()))
    }

    fn small() -> Scenario {
        ScenarioConfig {
            n_aps: 15,
            n_users: 40,
            n_sessions: 3,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(11)
        .generate()
    }

    #[test]
    fn incremental_crc_matches_journal_crc() {
        for sample in [
            &b""[..],
            b"123456789",
            b"The quick brown fox jumps over the lazy dog",
        ] {
            let mut inc = Crc32::new();
            // Feed in ragged pieces to exercise the incremental path.
            for piece in sample.chunks(3) {
                inc.update(piece);
            }
            assert_eq!(inc.finish(), mcast_events::journal::crc32(sample));
        }
    }

    #[test]
    fn roundtrip_preserves_the_scenario() {
        let s = small();
        let path = tmp("roundtrip.mcb");
        write_mcb(&s, &path).unwrap();
        let back = read_mcb(&path).unwrap();
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn roundtrip_zipf_and_basic_only() {
        let s = ScenarioConfig {
            n_aps: 10,
            n_users: 25,
            n_sessions: 4,
            popularity: SessionPopularity::Zipf { exponent: 1.0 },
            rate_policy: RatePolicy::BasicOnly,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(4)
        .generate();
        let path = tmp("zipf.mcb");
        write_mcb(&s, &path).unwrap();
        let back = read_mcb(&path).unwrap();
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic.mcb");
        std::fs::write(&path, b"NOPE----------------").unwrap();
        let err = read_mcb(&path).unwrap_err();
        assert_eq!(err.kind, mcast_events::DecodeErrorKind::BadMagic);
        assert!(err.to_string().contains("not an mcb file"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let s = small();
        let path = tmp("corrupt.mcb");
        write_mcb(&s, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file (inside some payload).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_mcb(&path).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch") || err.to_string().contains("truncated"),
            "{err}"
        );
        assert!(err.offset > 0, "provenance should point past the magic");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncation_is_detected_with_offset() {
        let s = small();
        let path = tmp("trunc.mcb");
        write_mcb(&s, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = read_mcb(&path).unwrap_err();
        assert_eq!(err.kind, mcast_events::DecodeErrorKind::Truncated);
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(err.offset, bytes.len() as u64 - 13, "END header offset");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn inflated_length_prefix_is_a_named_limit_error_not_an_allocation() {
        let s = small();
        let path = tmp("inflate.mcb");
        write_mcb(&s, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Forge the CONFIG section's length prefix (bytes 5..13) to an
        // absurd value; the declared-vs-remaining guard must fire before
        // any payload is read or buffered.
        bytes[5..13].copy_from_slice(&(1u64 << 60).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_mcb(&path).unwrap_err();
        assert_eq!(err.kind, mcast_events::DecodeErrorKind::LimitExceeded);
        assert_eq!(err.offset, 4, "points at the declaring header");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn section_cap_fires_under_strict_limits() {
        let s = small();
        let path = tmp("cap.mcb");
        write_mcb(&s, &path).unwrap();
        // The LINKS section of even this small scenario is far above a
        // 64-byte cap; the typed error names the cap.
        let err = read_mcb_with_limits(
            &path,
            mcast_events::DecodeLimits {
                max_section_bytes: 64,
                ..mcast_events::DecodeLimits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind, mcast_events::DecodeErrorKind::LimitExceeded);
        assert!(err.to_string().contains("cap"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trailing_garbage_after_end_is_rejected() {
        let s = small();
        let path = tmp("trailing.mcb");
        write_mcb(&s, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let err = read_mcb(&path).unwrap_err();
        assert_eq!(err.kind, mcast_events::DecodeErrorKind::Framing);
        assert!(err.to_string().contains("trailing"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn every_corpus_mutation_yields_a_typed_error_or_a_valid_scenario() {
        use mcast_events::harden::{mutate, ALL_MUTATIONS};
        let s = small();
        let path = tmp("mutate.mcb");
        write_mcb(&s, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let mutated_path = tmp("mutated.mcb");
        for m in ALL_MUTATIONS {
            for seed in 0..24u64 {
                let corrupted = mutate(&clean, m, seed);
                std::fs::write(&mutated_path, &corrupted).unwrap();
                match read_mcb(&mutated_path) {
                    // Salvage or a coincidental miss is only acceptable
                    // when the result still passes full validation.
                    Ok(back) => {
                        assert_eq!(back.instance.n_users(), s.instance.n_users());
                        assert_eq!(back.instance.n_aps(), s.instance.n_aps());
                    }
                    Err(e) => {
                        assert!(!e.what.is_empty(), "{m:?}/{seed}: unnamed error");
                    }
                }
            }
        }
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(mutated_path);
    }

    #[test]
    fn mcb_is_much_smaller_than_sparse_json() {
        let s = small();
        let path = tmp("size.mcb");
        write_mcb(&s, &path).unwrap();
        let mcb_len = std::fs::metadata(&path).unwrap().len() as usize;
        let json_len = serde_json::to_string(&s).unwrap().len();
        assert!(
            mcb_len < json_len,
            "mcb {mcb_len} bytes vs json {json_len} bytes"
        );
        let _ = std::fs::remove_file(path);
    }
}
