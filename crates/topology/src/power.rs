//! Per-AP adaptive power control (paper §8: "a generalized network model
//! that allows nodes to choose from a finite set of discrete power
//! levels").
//!
//! Each AP picks a power level that scales its rate–distance thresholds;
//! a hill-climbing optimizer searches the joint level assignment for the
//! one minimizing a caller-supplied objective (e.g. the MLA greedy's
//! total load). Deterministic and exact: the search is plain coordinate
//! descent over a finite grid.

use mcast_core::{Instance, InstanceBuilder, RateTable, SignalStrength};

use crate::scenario::Scenario;

/// Builds the instance induced by per-AP power levels: AP `a`'s link
/// rates come from the scenario's rate table with every distance
/// threshold scaled by `levels[a]`.
///
/// The supported-rate set is unchanged (power moves reach, not the rate
/// menu), so instances at different level assignments are comparable.
///
/// # Panics
///
/// Panics if `levels.len()` differs from the AP count or any level is
/// not strictly positive and finite.
pub fn instance_with_power(scenario: &Scenario, levels: &[f64]) -> Instance {
    assert_eq!(
        levels.len(),
        scenario.ap_positions.len(),
        "one level per AP"
    );
    let cfg = &scenario.config;
    let tables: Vec<RateTable> = levels
        .iter()
        .map(|&l| {
            assert!(l.is_finite() && l > 0.0, "power level must be positive");
            cfg.rate_table.scale_distances(l * cfg.power_scale)
        })
        .collect();

    let mut b = InstanceBuilder::new();
    b.supported_rates(cfg.rate_table.rates());
    b.rate_policy(cfg.rate_policy);
    let sessions: Vec<_> = (0..cfg.n_sessions)
        .map(|s| {
            let rate = cfg
                .session_rates
                .as_ref()
                .map_or(cfg.session_rate, |rs| rs[s]);
            b.add_session(rate)
        })
        .collect();
    let aps: Vec<_> = (0..scenario.ap_positions.len())
        .map(|_| b.add_ap(cfg.budget))
        .collect();
    let users: Vec<_> = scenario
        .instance
        .users()
        .map(|u| b.add_user(sessions[scenario.instance.user_session(u).index()]))
        .collect();
    for (ai, &a) in aps.iter().enumerate() {
        for (ui, &u) in users.iter().enumerate() {
            let d = scenario.ap_positions[ai].distance(&scenario.user_positions[ui]);
            if let Some(rate) = tables[ai].rate_at(d) {
                let signal = SignalStrength(-(d * 1000.0).round() as i64);
                b.link_with_signal(a, u, rate, signal)
                    .expect("endpoints were just added");
            }
        }
    }
    b.build().expect("power-scaled instance is valid")
}

/// Outcome of [`optimize_power`].
#[derive(Debug, Clone)]
pub struct PowerOutcome {
    /// Chosen level per AP.
    pub levels: Vec<f64>,
    /// The instance at those levels.
    pub instance: Instance,
    /// The objective value achieved (lower is better).
    pub objective: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

/// Coordinate-descent search over per-AP power levels, minimizing
/// `objective` (lower is better; e.g. the MLA greedy's total load, or the
/// BLA greedy's max load — plug in whatever revenue proxy applies).
///
/// Rounds sweep APs in id order; for each AP every candidate level is
/// tried with the rest fixed, keeping strict improvements. Stops after a
/// full sweep without improvement or `max_rounds`.
///
/// Note: users that fall out of all coverage at low power make the
/// full-coverage objectives fail; the supplied closure should return
/// `f64::INFINITY` for such instances (see the tests for the idiom).
///
/// # Panics
///
/// Panics if `candidate_levels` is empty.
pub fn optimize_power(
    scenario: &Scenario,
    candidate_levels: &[f64],
    max_rounds: usize,
    mut objective: impl FnMut(&Instance) -> f64,
) -> PowerOutcome {
    assert!(!candidate_levels.is_empty(), "need at least one level");
    let n_aps = scenario.ap_positions.len();
    let default_level = candidate_levels
        .iter()
        .copied()
        .min_by(|a, b| {
            ((a - 1.0).abs())
                .partial_cmp(&(b - 1.0).abs())
                .expect("finite levels")
        })
        .expect("non-empty");
    let mut levels = vec![default_level; n_aps];
    let mut evaluations = 0usize;
    let mut best_inst = instance_with_power(scenario, &levels);
    let mut best = objective(&best_inst);
    evaluations += 1;

    for _round in 0..max_rounds {
        let mut improved = false;
        for a in 0..n_aps {
            let original = levels[a];
            for &candidate in candidate_levels {
                if candidate == levels[a] {
                    continue;
                }
                let saved = levels[a];
                levels[a] = candidate;
                let inst = instance_with_power(scenario, &levels);
                let value = objective(&inst);
                evaluations += 1;
                if value < best {
                    best = value;
                    best_inst = inst;
                    improved = true;
                } else {
                    levels[a] = saved;
                }
            }
            let _ = original;
        }
        if !improved {
            break;
        }
    }

    PowerOutcome {
        levels,
        instance: best_inst,
        objective: best,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mcast_core::solve_mla;

    fn base() -> Scenario {
        ScenarioConfig {
            n_aps: 12,
            n_users: 30,
            n_sessions: 3,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(5)
        .generate()
    }

    fn mla_objective(inst: &Instance) -> f64 {
        match solve_mla(inst) {
            Ok(sol) => sol.total_load.as_f64(),
            Err(_) => f64::INFINITY, // a user lost all coverage
        }
    }

    #[test]
    fn uniform_level_one_reproduces_base_instance() {
        let s = base();
        let inst = instance_with_power(&s, &[1.0; 12]);
        for a in s.instance.aps() {
            for u in s.instance.users() {
                assert_eq!(inst.link_rate(a, u), s.instance.link_rate(a, u));
            }
        }
    }

    #[test]
    fn higher_power_only_adds_links() {
        let s = base();
        let lo = instance_with_power(&s, &[1.0; 12]);
        let hi = instance_with_power(&s, &[1.5; 12]);
        for a in lo.aps() {
            for u in lo.users() {
                if let Some(r) = lo.link_rate(a, u) {
                    assert!(hi.link_rate(a, u).is_some());
                    assert!(hi.link_rate(a, u).unwrap() >= r);
                }
            }
        }
    }

    #[test]
    fn optimizer_never_worse_than_default() {
        let s = base();
        let baseline = mla_objective(&s.instance);
        let out = optimize_power(&s, &[0.75, 1.0, 1.25, 1.5], 2, mla_objective);
        assert!(out.objective <= baseline + 1e-12);
        assert!(out.evaluations > 1);
        assert_eq!(out.levels.len(), 12);
        // Achieved objective re-derives on the returned instance.
        assert!((mla_objective(&out.instance) - out.objective).abs() < 1e-12);
    }

    #[test]
    fn optimizer_prefers_high_power_when_free() {
        // With only {1.0, 1.5} and no power cost in the objective, more
        // reach (higher rates) can only help the MLA greedy.
        let s = base();
        let out = optimize_power(&s, &[1.0, 1.5], 3, mla_objective);
        let all_high = instance_with_power(&s, &[1.5; 12]);
        assert!(out.objective <= mla_objective(&all_high) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "one level per AP")]
    fn wrong_level_count_panics() {
        let s = base();
        instance_with_power(&s, &[1.0]);
    }
}
