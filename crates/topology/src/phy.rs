//! PHY-level derivation of rate–distance tables.
//!
//! The paper's Table 1 takes its thresholds from Manshaei & Turletti's
//! 802.11a simulation study. This module derives such staircases from
//! first principles — a log-distance path-loss model plus per-rate SNR
//! requirements — so the evaluation can run on PHYs the paper never
//! measured (different environments, bands, or standards) while keeping
//! Table 1 as the calibrated default.
//!
//! Link budget at distance `d` (dB): received SNR =
//! `tx_power − PL(d₀) − 10·γ·log₁₀(d/d₀) − noise_floor`. Rate `r` is
//! usable while its SNR requirement is met, i.e. up to
//! `d_r = d₀ · 10^((tx_power − PL(d₀) − noise_floor − snr_r) / (10 γ))`.

use mcast_core::{Kbps, RateStep, RateTable, RateTableError};
use serde::{Deserialize, Serialize};

/// A log-distance path-loss channel model with per-rate SNR requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Transmit power plus antenna gains (dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance (dB).
    pub pl0_db: f64,
    /// Reference distance (m), usually 1.
    pub d0_m: f64,
    /// Path-loss exponent γ (≈2 free space, 2.7–3.5 urban, 4–6 indoor
    /// obstructed).
    pub exponent: f64,
    /// Receiver noise floor (dBm), thermal noise + noise figure.
    pub noise_floor_dbm: f64,
    /// Per rate: the minimum SNR (dB) at which it decodes.
    pub snr_requirements_db: Vec<(Kbps, f64)>,
}

impl PathLossModel {
    /// An 802.11a-flavored model calibrated so that the derived staircase
    /// approximates the paper's Table 1 (6 Mbps reaching ≈200 m, 54 Mbps
    /// ≈35 m) with a path-loss exponent of 3.0.
    pub fn ieee80211a_calibrated() -> PathLossModel {
        PathLossModel {
            // EIRP including antenna gains: yields a 71 dB link budget
            // (25 − 47 + 93) at the 1 m reference, which places 6 Mbps at
            // ≈200 m and 54 Mbps at ≈35 m under γ = 3.
            tx_power_dbm: 25.0,
            pl0_db: 47.0,
            d0_m: 1.0,
            exponent: 3.0,
            noise_floor_dbm: -93.0,
            // OFDM SNR requirements (dB), textbook values nudged so the
            // thresholds land near Table 1 under this link budget.
            snr_requirements_db: vec![
                (Kbps::from_mbps(6), 2.0),
                (Kbps::from_mbps(12), 6.2),
                (Kbps::from_mbps(18), 10.4),
                (Kbps::from_mbps(24), 13.2),
                (Kbps::from_mbps(36), 17.7),
                (Kbps::from_mbps(48), 23.0),
                (Kbps::from_mbps(54), 24.7),
            ],
        }
    }

    /// Received SNR (dB) at distance `d_m` meters.
    ///
    /// # Panics
    ///
    /// Panics if `d_m` is not strictly positive.
    pub fn snr_at(&self, d_m: f64) -> f64 {
        assert!(d_m > 0.0, "distance must be positive");
        let d = d_m.max(self.d0_m);
        let path_loss = self.pl0_db + 10.0 * self.exponent * (d / self.d0_m).log10();
        self.tx_power_dbm - path_loss - self.noise_floor_dbm
    }

    /// The maximum distance (m) at which `snr_db` is still achieved.
    pub fn range_for_snr(&self, snr_db: f64) -> f64 {
        let budget = self.tx_power_dbm - self.pl0_db - self.noise_floor_dbm - snr_db;
        self.d0_m * 10f64.powf(budget / (10.0 * self.exponent))
    }

    /// Derives the rate–distance staircase.
    ///
    /// # Errors
    ///
    /// [`RateTableError`] if the derived steps are not strictly monotonic
    /// (e.g. two rates given the same SNR requirement) or no rate has
    /// positive range.
    pub fn derive_table(&self) -> Result<RateTable, RateTableError> {
        let steps: Vec<RateStep> = self
            .snr_requirements_db
            .iter()
            .map(|&(rate, snr)| RateStep {
                rate,
                max_distance_m: self.range_for_snr(snr),
            })
            .collect();
        RateTable::new(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_decreases_with_distance() {
        let m = PathLossModel::ieee80211a_calibrated();
        assert!(m.snr_at(10.0) > m.snr_at(50.0));
        assert!(m.snr_at(50.0) > m.snr_at(200.0));
    }

    #[test]
    fn range_inverts_snr() {
        let m = PathLossModel::ieee80211a_calibrated();
        for snr in [3.0, 10.0, 20.0] {
            let d = m.range_for_snr(snr);
            assert!((m.snr_at(d) - snr).abs() < 1e-9, "snr {snr} at {d} m");
        }
    }

    /// The calibrated model lands within ~20% of every Table 1 threshold —
    /// close enough that experiments swapping in the derived table keep
    /// the paper's geometry.
    #[test]
    fn calibration_approximates_table1() {
        let derived = PathLossModel::ieee80211a_calibrated()
            .derive_table()
            .unwrap();
        let reference = RateTable::ieee80211a();
        for (d, r) in derived.steps().iter().zip(reference.steps()) {
            assert_eq!(d.rate, r.rate);
            let rel = (d.max_distance_m - r.max_distance_m).abs() / r.max_distance_m;
            assert!(
                rel < 0.20,
                "{}: derived {:.1} m vs Table 1 {:.1} m ({:.0}%)",
                d.rate,
                d.max_distance_m,
                r.max_distance_m,
                rel * 100.0
            );
        }
    }

    #[test]
    fn higher_exponent_shrinks_every_threshold() {
        let free = PathLossModel {
            exponent: 2.5,
            ..PathLossModel::ieee80211a_calibrated()
        };
        let dense = PathLossModel {
            exponent: 4.0,
            ..PathLossModel::ieee80211a_calibrated()
        };
        let t_free = free.derive_table().unwrap();
        let t_dense = dense.derive_table().unwrap();
        for (a, b) in t_free.steps().iter().zip(t_dense.steps()) {
            assert!(a.max_distance_m > b.max_distance_m);
        }
    }

    #[test]
    fn derived_table_runs_a_scenario() {
        use crate::scenario::ScenarioConfig;
        let table = PathLossModel::ieee80211a_calibrated()
            .derive_table()
            .unwrap();
        let scenario = ScenarioConfig {
            n_aps: 30,
            n_users: 60,
            rate_table: table,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(2)
        .generate();
        let sol = mcast_core::solve_mla(&scenario.instance).unwrap();
        assert_eq!(sol.satisfied, 60);
    }

    #[test]
    fn equal_snr_requirements_rejected() {
        let mut m = PathLossModel::ieee80211a_calibrated();
        m.snr_requirements_db[1].1 = m.snr_requirements_db[0].1;
        assert!(m.derive_table().is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        PathLossModel::ieee80211a_calibrated().snr_at(0.0);
    }
}
