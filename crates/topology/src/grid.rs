//! Uniform-grid spatial index over a fixed point set.
//!
//! Scenario generation repeatedly asks two geometric questions about the AP
//! layout: "is this candidate user position within radio range of *any*
//! AP?" (rejection sampling, mobility re-draws) and "which APs are within
//! range of this user, and how far?" (link building). Both were answered by
//! scanning every AP — O(APs) per query, O(APs × users) per scenario. A
//! [`SpatialGrid`] buckets the APs into square cells sized to the radio
//! range, so a query inspects only the ≤ 3×3 block of cells overlapping
//! the query disc: O(local APs) per query.
//!
//! Bit-for-bit equivalence with the scans it replaces: candidate hits are
//! tested with the *identical* predicate (`Point::distance`, `<= range`)
//! and [`SpatialGrid::neighbors_within`] returns matches sorted by point
//! index, so callers observe the same booleans, the same distances, and
//! the same order as the original ascending-index loops (property-tested
//! in `tests/grid_equivalence.rs`).

use crate::geometry::Point;

/// A uniform bucket grid over a fixed set of points (the APs).
///
/// Build once per scenario with [`SpatialGrid::build`]; query with any
/// radius (cells are merely a performance hint — correctness never depends
/// on the build-time cell size).
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    points: Vec<Point>,
    /// Cell side length (m); strictly positive.
    cell_m: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    /// Point indices per cell, row-major (`iy * nx + ix`), each ascending.
    cells: Vec<Vec<u32>>,
    /// Per cell: whether any point lies in its 3×3 neighborhood. Lets
    /// [`SpatialGrid::covers`] reject a query in one lookup when the
    /// radius fits in a cell — the common case for rejection-sampled
    /// placement over sparsely covered areas.
    dilated: Vec<bool>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with cells of side `cell_m` (clamped to
    /// a sane positive value; pass the radio range for range queries to
    /// touch at most a 3×3 cell block).
    pub fn build(points: &[Point], cell_m: f64) -> SpatialGrid {
        let cell_m = if cell_m.is_finite() && cell_m > 0.0 {
            cell_m
        } else {
            1.0
        };
        if points.is_empty() {
            return SpatialGrid {
                points: Vec::new(),
                cell_m,
                min_x: 0.0,
                min_y: 0.0,
                nx: 0,
                ny: 0,
                cells: Vec::new(),
                dilated: Vec::new(),
            };
        }
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let nx = (((max_x - min_x) / cell_m).floor() as usize) + 1;
        let ny = (((max_y - min_y) / cell_m).floor() as usize) + 1;
        let mut cells = vec![Vec::new(); nx * ny];
        for (i, p) in points.iter().enumerate() {
            let ix = clamp_cell((p.x - min_x) / cell_m, nx);
            let iy = clamp_cell((p.y - min_y) / cell_m, ny);
            cells[iy * nx + ix].push(i as u32);
        }
        let mut dilated = vec![false; nx * ny];
        for iy in 0..ny {
            for ix in 0..nx {
                if !cells[iy * nx + ix].is_empty() {
                    for jy in iy.saturating_sub(1)..=(iy + 1).min(ny - 1) {
                        for jx in ix.saturating_sub(1)..=(ix + 1).min(nx - 1) {
                            dilated[jy * nx + jx] = true;
                        }
                    }
                }
            }
        }
        SpatialGrid {
            points: points.to_vec(),
            cell_m,
            min_x,
            min_y,
            nx,
            ny,
            cells,
            dilated,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cell index ranges overlapping the disc of radius `range` around
    /// `p`, or `None` when the grid is empty.
    fn cell_span(&self, p: &Point, range: f64) -> Option<(usize, usize, usize, usize)> {
        if self.points.is_empty() {
            return None;
        }
        let lo_x = (p.x - range - self.min_x) / self.cell_m;
        let hi_x = (p.x + range - self.min_x) / self.cell_m;
        let lo_y = (p.y - range - self.min_y) / self.cell_m;
        let hi_y = (p.y + range - self.min_y) / self.cell_m;
        let ix0 = clamp_cell(lo_x, self.nx);
        let ix1 = clamp_cell(hi_x, self.nx);
        let iy0 = clamp_cell(lo_y, self.ny);
        let iy1 = clamp_cell(hi_y, self.ny);
        // A disc fully left/right/above/below the box still clamps into the
        // border cells; the exact distance test rejects those points, so
        // clamping is safe (only a little redundant work).
        Some((ix0, ix1, iy0, iy1))
    }

    /// Whether any indexed point lies within `range` of `p` — the same
    /// predicate as `points.iter().any(|q| q.distance(p) <= range)`.
    pub fn covers(&self, p: &Point, range: f64) -> bool {
        // O(1) rejection: when the radius fits inside one cell, every point
        // within `range` of an in-bounds `p` lies in the 3×3 block around
        // `p`'s cell — if that whole block is empty (`!dilated`), no point
        // can satisfy the distance test. (NaN coordinates or an
        // out-of-bounds `p` fail the guards and take the exact path.)
        if range <= self.cell_m && !self.points.is_empty() {
            let fx = (p.x - self.min_x) / self.cell_m;
            let fy = (p.y - self.min_y) / self.cell_m;
            if fx >= 0.0 && fy >= 0.0 {
                let (ix, iy) = (fx as usize, fy as usize);
                if ix < self.nx && iy < self.ny && !self.dilated[iy * self.nx + ix] {
                    return false;
                }
            }
        }
        let Some((ix0, ix1, iy0, iy1)) = self.cell_span(p, range) else {
            return false;
        };
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                for &i in &self.cells[iy * self.nx + ix] {
                    if self.points[i as usize].distance(p) <= range {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// All indexed points within `range` of `p`, as `(index, distance)`
    /// pairs sorted by ascending index — the same hits, distances and
    /// order as the full ascending-index scan.
    pub fn neighbors_within(&self, p: &Point, range: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        self.neighbors_within_into(p, range, &mut out);
        out
    }

    /// Buffer-reuse variant of [`SpatialGrid::neighbors_within`]: clears
    /// `out` and fills it with the same `(index, distance)` pairs in the
    /// same ascending-index order. Hot loops (link building, the tile
    /// partitioner) hold one buffer across queries so the per-query
    /// allocation disappears after warm-up.
    pub fn neighbors_within_into(&self, p: &Point, range: f64, out: &mut Vec<(u32, f64)>) {
        out.clear();
        self.for_each_within(p, range, |i, d| out.push((i, d)));
        out.sort_unstable_by_key(|&(i, _)| i);
    }

    /// The grid cell containing `p`, clamped into the grid bounds
    /// (`(0, 0)` on an empty grid) — the same mapping used to bucket the
    /// indexed points at build time. The tile partitioner derives tile
    /// stripes from these coordinates.
    pub fn cell_of(&self, p: &Point) -> (usize, usize) {
        if self.points.is_empty() {
            return (0, 0);
        }
        (
            clamp_cell((p.x - self.min_x) / self.cell_m, self.nx),
            clamp_cell((p.y - self.min_y) / self.cell_m, self.ny),
        )
    }

    /// Cell counts along x and y (`(0, 0)` on an empty grid).
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Calls `f(index, distance)` for every indexed point within `range`
    /// of `p`, in unspecified order and without allocating. The hits and
    /// distances are exactly those of the full scan; callers that need the
    /// ascending-index order use [`SpatialGrid::neighbors_within`].
    pub fn for_each_within(&self, p: &Point, range: f64, mut f: impl FnMut(u32, f64)) {
        let Some((ix0, ix1, iy0, iy1)) = self.cell_span(p, range) else {
            return;
        };
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                for &i in &self.cells[iy * self.nx + ix] {
                    let d = self.points[i as usize].distance(p);
                    if d <= range {
                        f(i, d);
                    }
                }
            }
        }
    }
}

/// Clamps a fractional cell coordinate into `[0, n)`.
fn clamp_cell(v: f64, n: usize) -> usize {
    debug_assert!(n > 0);
    let v = v.floor();
    if v <= 0.0 {
        0
    } else {
        (v as usize).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_covers(points: &[Point], p: &Point, range: f64) -> bool {
        points.iter().any(|q| q.distance(p) <= range)
    }

    fn scan_neighbors(points: &[Point], p: &Point, range: f64) -> Vec<(u32, f64)> {
        points
            .iter()
            .enumerate()
            .filter_map(|(i, q)| {
                let d = q.distance(p);
                (d <= range).then_some((i as u32, d))
            })
            .collect()
    }

    fn pseudo_points(n: usize, side: f64) -> Vec<Point> {
        // Deterministic scatter without pulling in an RNG.
        (0..n)
            .map(|i| {
                let a = (i as f64 * 0.754_877_666).fract();
                let b = (i as f64 * 0.569_840_290).fract();
                Point::new(a * side, b * side)
            })
            .collect()
    }

    #[test]
    fn matches_linear_scan() {
        let pts = pseudo_points(120, 1000.0);
        let grid = SpatialGrid::build(&pts, 200.0);
        for q in pseudo_points(60, 1200.0).iter().map(|p| Point {
            x: p.x - 100.0,
            y: p.y - 100.0,
        }) {
            for range in [0.0, 50.0, 200.0, 450.0] {
                assert_eq!(grid.covers(&q, range), scan_covers(&pts, &q, range));
                assert_eq!(
                    grid.neighbors_within(&q, range),
                    scan_neighbors(&pts, &q, range)
                );
            }
        }
    }

    #[test]
    fn empty_grid() {
        let grid = SpatialGrid::build(&[], 100.0);
        assert!(grid.is_empty());
        assert!(!grid.covers(&Point::new(0.0, 0.0), 1e9));
        assert!(grid.neighbors_within(&Point::new(0.0, 0.0), 1e9).is_empty());
    }

    #[test]
    fn single_point_and_degenerate_cell() {
        let pts = [Point::new(5.0, 5.0)];
        for cell in [0.0, f64::NAN, 200.0] {
            let grid = SpatialGrid::build(&pts, cell);
            assert!(grid.covers(&Point::new(5.0, 8.0), 3.0));
            assert!(!grid.covers(&Point::new(5.0, 8.1), 3.0));
        }
    }

    #[test]
    fn into_variant_matches_and_reuses_buffer() {
        let pts = pseudo_points(80, 500.0);
        let grid = SpatialGrid::build(&pts, 100.0);
        let mut buf = Vec::new();
        for q in pseudo_points(40, 600.0) {
            grid.neighbors_within_into(&q, 150.0, &mut buf);
            assert_eq!(buf, grid.neighbors_within(&q, 150.0));
        }
    }

    #[test]
    fn cell_of_matches_bucketing() {
        let pts = pseudo_points(50, 300.0);
        let grid = SpatialGrid::build(&pts, 75.0);
        let (nx, ny) = grid.dims();
        assert!(nx > 0 && ny > 0);
        for p in &pts {
            let (ix, iy) = grid.cell_of(p);
            assert!(ix < nx && iy < ny);
            // The point is bucketed in exactly that cell: a zero-radius
            // query from the cell's points must include it.
            assert!(grid.neighbors_within(p, 0.0).iter().any(|&(i, _)| {
                (pts[i as usize].x - p.x).abs() < 1e-12 && (pts[i as usize].y - p.y).abs() < 1e-12
            }));
        }
        assert_eq!(
            SpatialGrid::build(&[], 10.0).cell_of(&Point::new(1.0, 2.0)),
            (0, 0)
        );
    }

    #[test]
    fn far_away_query_hits_nothing() {
        let pts = pseudo_points(50, 100.0);
        let grid = SpatialGrid::build(&pts, 30.0);
        assert!(!grid.covers(&Point::new(-1e6, -1e6), 10.0));
        assert!(grid
            .neighbors_within(&Point::new(1e6, 1e6), 10.0)
            .is_empty());
    }
}
