//! Spatial tile partitioning for the partitioned parallel engine.
//!
//! [`tile_partition`] splits a generated [`Scenario`] into `n_tiles`
//! vertical stripes of [`SpatialGrid`] cells (cells are sized to the radio
//! range, so a stripe boundary is crossed only by coverage disks of APs in
//! the two adjacent cell columns). APs take the tile of their cell; users
//! follow their nearest in-range AP, so each tile's users cluster around
//! its APs and the serially-sequenced boundary fraction stays small. The
//! exact interior/boundary classification is then derived from instance
//! reachability by [`Partition::new`] — a tight refinement of the
//! geometric "disk crosses a tile edge" test (geometry can only
//! over-approximate which APs are shared; reachability is definitive).

use mcast_core::Partition;

use crate::geometry::Point;
use crate::grid::SpatialGrid;
use crate::scenario::Scenario;

/// Partitions `scenario` into `n_tiles` vertical stripes of grid cells
/// for [`run_distributed_partitioned`](mcast_core::run_distributed_partitioned).
///
/// Deterministic: the stripe of a position depends only on the AP layout
/// and the rate table, never on thread scheduling or iteration order.
/// With `n_tiles = 1` everything is interior and the partitioned driver
/// degenerates to the single-threaded engine.
///
/// # Panics
///
/// Panics if `n_tiles` is zero.
pub fn tile_partition(scenario: &Scenario, n_tiles: usize) -> Partition {
    assert!(n_tiles >= 1, "at least one tile");
    let cfg = &scenario.config;
    // The same scaled table / range / grid recipe as scenario generation
    // and mobility perturbation, so cells line up with radio coverage.
    let table = if cfg.power_scale == 1.0 {
        cfg.rate_table.clone()
    } else {
        cfg.rate_table.scale_distances(cfg.power_scale)
    };
    let range = table.range_m();
    let grid = SpatialGrid::build(&scenario.ap_positions, range);
    let (nx, _ny) = grid.dims();
    let stripe_of = |p: &Point| -> u32 {
        if nx == 0 {
            return 0;
        }
        let (ix, _iy) = grid.cell_of(p);
        (ix * n_tiles / nx).min(n_tiles - 1) as u32
    };
    let ap_tile: Vec<u32> = scenario.ap_positions.iter().map(stripe_of).collect();
    let mut hits: Vec<(u32, f64)> = Vec::new();
    let user_tile: Vec<u32> = scenario
        .user_positions
        .iter()
        .map(|p| {
            grid.neighbors_within_into(p, range, &mut hits);
            hits.iter()
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("distances are finite")
                        .then(a.0.cmp(&b.0))
                })
                .map_or_else(|| stripe_of(p), |&(ai, _)| ap_tile[ai as usize])
        })
        .collect();
    Partition::new(&scenario.instance, n_tiles, ap_tile, user_tile)
        .expect("stripe indices are always in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mcast_core::ApId;

    fn small() -> Scenario {
        ScenarioConfig {
            n_aps: 40,
            n_users: 120,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(11)
        .generate()
    }

    #[test]
    fn tiles_cover_and_are_deterministic() {
        let s = small();
        for w in [1usize, 2, 4] {
            let p1 = tile_partition(&s, w);
            let p2 = tile_partition(&s, w);
            assert_eq!(p1.n_tiles(), w);
            for a in s.instance.aps() {
                assert_eq!(p1.ap_tile(a), p2.ap_tile(a));
                assert!(p1.ap_tile(a) < w);
            }
            for u in s.instance.users() {
                assert_eq!(p1.user_tile(u), p2.user_tile(u));
            }
        }
        // One tile: nothing is boundary.
        assert_eq!(tile_partition(&s, 1).boundary_ap_count(), 0);
    }

    /// The reachability-derived boundary set is contained in the
    /// geometric one: an AP whose coverage disk stays strictly inside its
    /// stripe (more than one cell column from both stripe edges, cells
    /// being range-sized) is never classified boundary.
    #[test]
    fn interior_disks_are_interior() {
        let s = small();
        let cfg = &s.config;
        let table = if cfg.power_scale == 1.0 {
            cfg.rate_table.clone()
        } else {
            cfg.rate_table.scale_distances(cfg.power_scale)
        };
        let grid = SpatialGrid::build(&s.ap_positions, table.range_m());
        let (nx, _) = grid.dims();
        let w = 3usize;
        let part = tile_partition(&s, w);
        for (i, p) in s.ap_positions.iter().enumerate() {
            let (ix, _) = grid.cell_of(p);
            let tile = ix * w / nx;
            // Cell columns owned by this tile:
            let lo = (0..nx).find(|&c| c * w / nx == tile).unwrap();
            let hi = (0..nx).rev().find(|&c| c * w / nx == tile).unwrap();
            // Strictly interior columns (a full range-sized column away
            // from both edges) ⇒ no other-tile user can reach the AP.
            if ix > lo + 1 && ix + 1 < hi {
                assert!(
                    !part.is_boundary_ap(ApId(i as u32)),
                    "ap {i} in column {ix} of [{lo}, {hi}] should be interior"
                );
            }
        }
    }

    /// Users follow an in-range AP's tile (coverage is required in the
    /// default config, so every user has an in-range AP).
    #[test]
    fn users_follow_reachable_aps() {
        let s = small();
        let part = tile_partition(&s, 4);
        for u in s.instance.users() {
            let t = part.user_tile(u);
            assert!(
                s.instance
                    .candidate_aps(u)
                    .iter()
                    .any(|&(a, _)| part.ap_tile(a) == t),
                "user {u} assigned to a tile none of its candidates are in"
            );
        }
    }
}
