//! Adversarial-input properties of the `.mcb` reader: a file torn at
//! *any* byte offset, or with *any* single byte overwritten, decodes to
//! a typed [`DecodeError`] or to a scenario that passes
//! [`validate_scenario`] — never a panic, and never an allocation
//! driven by a forged length prefix (the reader checks every declared
//! length against the bytes that actually remain).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use mcast_events::{DecodeError, DecodeErrorKind};
use mcast_topology::{read_mcb, validate_scenario, write_mcb, ScenarioConfig};

/// One pinned scenario's `.mcb` bytes, generated once per process.
fn base_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let scenario = ScenarioConfig {
            n_aps: 8,
            n_users: 24,
            n_sessions: 3,
            width_m: 420.0,
            height_m: 420.0,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(17)
        .generate();
        let path = scratch_path();
        write_mcb(&scenario, &path).expect("write base mcb");
        let bytes = std::fs::read(&path).expect("read base mcb back");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// A unique temp path per call, so proptest cases never race each other.
fn scratch_path() -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mcast_mcb_harden_{}_{}.mcb",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Decodes `bytes` as a `.mcb` file and enforces the hardening
/// contract: `Err` must be a well-formed typed error, `Ok` must pass
/// structural validation.
fn decode_must_be_sound(bytes: &[u8]) -> Result<(), TestCaseError> {
    let path = scratch_path();
    std::fs::write(&path, bytes).expect("write mutated mcb");
    let outcome: Result<_, DecodeError> = read_mcb(&path);
    let _ = std::fs::remove_file(&path);
    match outcome {
        Ok(scenario) => {
            // A corruption that still decodes must have produced a
            // scenario indistinguishable from a valid one.
            prop_assert!(
                validate_scenario(&scenario).is_ok(),
                "decoded garbage passed the reader but fails validation"
            );
        }
        Err(e) => {
            prop_assert!(
                e.offset <= bytes.len() as u64,
                "offset {} past EOF",
                e.offset
            );
            prop_assert!(!e.what.is_empty(), "unnamed decode error");
            // Torn/corrupt input must never be misreported as an OS
            // read failure.
            prop_assert!(
                e.kind != DecodeErrorKind::Io,
                "corruption reported as IO: {e}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tearing the file at an arbitrary offset (a crashed writer, a
    /// partial download) is always caught.
    #[test]
    fn torn_mcb_never_panics(cut in 0usize..=1usize << 16) {
        let base = base_bytes();
        let cut = cut.min(base.len());
        decode_must_be_sound(&base[..cut])?;
        // A whole-file decode must still work after the tear checks —
        // the base fixture itself stays sound.
        if cut == 0 {
            decode_must_be_sound(base)?;
        }
    }

    /// Overwriting any single byte with any value is always caught (or
    /// yields a still-valid scenario, e.g. a flip inside an unused
    /// float's mantissa caught by the section checksum anyway).
    #[test]
    fn corrupted_mcb_byte_never_panics(pos in 0usize..1usize << 16, val in 0u8..=255) {
        let base = base_bytes();
        let mut bytes = base.to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = val;
        decode_must_be_sound(&bytes)?;
    }
}
