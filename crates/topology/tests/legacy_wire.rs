//! Wire-compatibility pins for the legacy dense scenario format.
//!
//! The two fixture files were written by the pre-CSR release (dense
//! APs × users `link`/`signal` matrices on the wire). They pin three
//! guarantees at once:
//!
//! 1. **Legacy files still load** — the dense fallback read path parses
//!    them into the CSR [`mcast_topology::Scenario`].
//! 2. **Legacy emit is byte-identical** — `to_legacy_dense_value` renders
//!    the loaded scenario back to the exact bytes of the fixture.
//! 3. **Generation is unchanged** — regenerating from the embedded
//!    config reproduces the fixture bytes, so the CSR refactor moved
//!    storage without moving semantics.

use mcast_topology::{Scenario, ScenarioConfig};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn check_fixture(name: &str) {
    let bytes = fixture(name);
    // 1. The dense wire still loads.
    let scenario: Scenario = serde_json::from_str(&bytes).expect("legacy dense file loads");
    // 2. Legacy emit reproduces the file byte for byte.
    let emitted = serde_json::to_string(&scenario.to_legacy_dense_value()).unwrap();
    assert_eq!(emitted, bytes, "{name}: legacy emit drifted");
    // 3. Re-generating from the embedded config reproduces it too (both
    // generation paths).
    let regen = scenario.config.generate();
    let regen_bytes = serde_json::to_string(&regen.to_legacy_dense_value()).unwrap();
    assert_eq!(regen_bytes, bytes, "{name}: generation drifted");
    let streamed = scenario.config.generate_streaming();
    let streamed_bytes = serde_json::to_string(&streamed.to_legacy_dense_value()).unwrap();
    assert_eq!(
        streamed_bytes, bytes,
        "{name}: streaming generation drifted"
    );
}

#[test]
fn legacy_dense_small_roundtrips_byte_identical() {
    check_fixture("legacy_dense_small.json");
}

#[test]
fn legacy_dense_mid_roundtrips_byte_identical() {
    check_fixture("legacy_dense_mid.json");
}

#[test]
fn sparse_wire_roundtrips_the_legacy_fixtures() {
    for name in ["legacy_dense_small.json", "legacy_dense_mid.json"] {
        let scenario: Scenario = serde_json::from_str(&fixture(name)).unwrap();
        // Dense-loaded scenario -> sparse wire -> load -> sparse wire:
        // stable after one hop, and the legacy emit survives the trip.
        let sparse = serde_json::to_string(&scenario).unwrap();
        assert!(
            sparse.contains("mcast-instance/v1"),
            "{name}: default write path must be the sparse wire"
        );
        assert!(
            !sparse.contains("\"link\":"),
            "{name}: sparse wire must not carry dense matrices"
        );
        let back: Scenario = serde_json::from_str(&sparse).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), sparse);
        assert_eq!(
            serde_json::to_string(&back.to_legacy_dense_value()).unwrap(),
            fixture(name)
        );
    }
}

#[test]
fn scenario_config_defaults_match_fixture_configs() {
    // The fixtures embed full configs; spot-check the fields the README
    // documents so a default drift fails loudly here, not in CI diffing.
    let small: Scenario = serde_json::from_str(&fixture("legacy_dense_small.json")).unwrap();
    assert_eq!(small.config.n_aps, 12);
    assert_eq!(small.config.n_users, 30);
    assert_eq!(small.config.seed, 7);
    let paper = ScenarioConfig::paper_default();
    assert_eq!(small.config.rate_table, paper.rate_table);
    assert_eq!(small.config.width_m, paper.width_m);
}
