//! Property tests: the spatial-grid fast paths are observationally
//! identical to the all-pairs scans they replaced.
//!
//! Two layers of evidence:
//!
//! * [`SpatialGrid`] answers `covers` / `neighbors_within` exactly like a
//!   linear scan with the same `Point::distance <= range` predicate, for
//!   arbitrary point sets, query points, ranges, and (deliberately
//!   mismatched) build-time cell sizes;
//! * whole-scenario generation through the grid
//!   ([`ScenarioConfig::generate`]) equals the all-pairs reference path
//!   ([`ScenarioConfig::generate_reference`]) — same geometry, same RNG
//!   consumption, and link-for-link identical instances.

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_topology::{Placement, Point, ScenarioConfig, SpatialGrid};

fn point() -> impl Strategy<Value = Point> {
    (-50.0f64..1500.0, -50.0f64..1500.0).prop_map(|(x, y)| Point::new(x, y))
}

fn scan_neighbors(points: &[Point], p: &Point, range: f64) -> Vec<(u32, f64)> {
    points
        .iter()
        .enumerate()
        .filter_map(|(i, q)| {
            let d = q.distance(p);
            (d <= range).then_some((i as u32, d))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_queries_match_linear_scan(
        points in vec(point(), 0..60),
        queries in vec(point(), 1..20),
        cell_m in 10.0f64..400.0,
        range in 0.0f64..500.0,
    ) {
        let grid = SpatialGrid::build(&points, cell_m);
        for q in &queries {
            let scan = scan_neighbors(&points, q, range);
            prop_assert_eq!(
                grid.covers(q, range),
                !scan.is_empty(),
                "covers diverged at {:?} range {}", q, range
            );
            prop_assert_eq!(grid.neighbors_within(q, range), scan);
        }
    }

    #[test]
    fn grid_scenario_generation_matches_all_pairs_reference(
        seed in 0u64..u64::MAX,
        n_aps in 1usize..25,
        n_users in 0usize..30,
        side in 300.0f64..900.0,
        clustered in proptest::bool::ANY,
    ) {
        let cfg = ScenarioConfig {
            seed,
            n_aps,
            n_users,
            width_m: side,
            height_m: side,
            ap_placement: if clustered {
                Placement::Clustered { clusters: 3, sigma_m: 60.0 }
            } else {
                Placement::Uniform
            },
            ..ScenarioConfig::paper_default()
        };
        // Coverage may genuinely be unreachable for a tiny clustered
        // layout on a big area; the property is that BOTH paths then fail
        // the same way.
        let fast = cfg.try_generate();
        let slow = cfg.clone().try_generate_reference();
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                prop_assert_eq!(&fast.ap_positions, &slow.ap_positions);
                prop_assert_eq!(&fast.user_positions, &slow.user_positions);
                let (fi, si) = (&fast.instance, &slow.instance);
                prop_assert_eq!(fi.n_aps(), si.n_aps());
                prop_assert_eq!(fi.n_users(), si.n_users());
                for u in fi.users() {
                    prop_assert_eq!(fi.user_session(u), si.user_session(u));
                    for a in fi.aps() {
                        prop_assert_eq!(fi.link_rate(a, u), si.link_rate(a, u));
                        prop_assert_eq!(fi.signal(a, u), si.signal(a, u));
                    }
                }
                // Byte-identical on the wire, too (the persisted form).
                prop_assert_eq!(
                    serde_json::to_string(fi).unwrap(),
                    serde_json::to_string(si).unwrap()
                );
            }
            (fast, slow) => prop_assert_eq!(fast.err(), slow.err()),
        }
    }
}
