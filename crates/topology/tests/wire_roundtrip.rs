//! Property tests for the three scenario wire formats and the two
//! generation paths:
//!
//! * sparse JSON (the default wire) roundtrips a generated scenario;
//! * legacy dense JSON (`to_legacy_dense_value`) parses back into the
//!   byte-identical scenario — dense JSON ↔ CSR `Instance` is lossless;
//! * `.mcb` (compact binary) roundtrips through a real file;
//! * streaming generation produces byte-identical scenarios to the
//!   batch path for arbitrary configs, and rejects the same configs.

use proptest::prelude::*;

use mcast_core::{Kbps, Load, RatePolicy};
use mcast_topology::{read_mcb, write_mcb, Scenario, ScenarioConfig, SessionPopularity};

fn config() -> impl Strategy<Value = ScenarioConfig> {
    (
        0u64..u64::MAX,
        1usize..16,
        0usize..40,
        1usize..4,
        100.0f64..900.0,
        (
            proptest::bool::ANY,
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        850u32..1000,
    )
        .prop_map(
            |(seed, n_aps, n_users, n_sessions, side, (basic_only, zipf, coverage), permille)| {
                ScenarioConfig {
                    n_aps,
                    n_users,
                    n_sessions,
                    width_m: side,
                    height_m: side,
                    budget: Load::permille(permille),
                    rate_policy: if basic_only {
                        RatePolicy::BasicOnly
                    } else {
                        RatePolicy::MultiRate
                    },
                    popularity: if zipf {
                        SessionPopularity::Zipf { exponent: 1.1 }
                    } else {
                        SessionPopularity::Uniform
                    },
                    session_rates: (n_sessions == 3)
                        .then(|| vec![Kbps::from_mbps(1), Kbps::from_mbps(2), Kbps(512)]),
                    require_coverage: coverage,
                    ..ScenarioConfig::paper_default()
                }
                .with_seed(seed)
            },
        )
}

fn sparse_json(sc: &Scenario) -> String {
    serde_json::to_string(sc).expect("scenario serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_and_dense_json_roundtrip_the_instance(cfg in config()) {
        let sc = cfg.generate();
        let sparse = sparse_json(&sc);

        // Sparse wire: parse → re-emit is byte-identical.
        let reloaded: Scenario = serde_json::from_str(&sparse).expect("sparse wire loads");
        prop_assert_eq!(&sparse_json(&reloaded), &sparse, "sparse roundtrip drifted");

        // Dense wire: legacy emit → fallback read → same scenario.
        let dense = serde_json::to_string(&sc.to_legacy_dense_value()).unwrap();
        let from_dense: Scenario = serde_json::from_str(&dense).expect("dense wire loads");
        prop_assert_eq!(&sparse_json(&from_dense), &sparse, "dense roundtrip drifted");
        // And the dense emit itself is stable across the hop.
        let dense_again = serde_json::to_string(&from_dense.to_legacy_dense_value()).unwrap();
        prop_assert_eq!(dense_again, dense, "dense emit drifted after a hop");
    }

    #[test]
    fn mcb_roundtrips_the_scenario(cfg in config()) {
        let sc = cfg.generate();
        let path = std::env::temp_dir().join(format!(
            "mcast_wire_prop_{}_{}.mcb",
            std::process::id(),
            cfg.seed
        ));
        write_mcb(&sc, &path).expect("mcb writes");
        let reloaded = read_mcb(&path).expect("mcb reads");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(sparse_json(&reloaded), sparse_json(&sc), "mcb roundtrip drifted");
    }

    #[test]
    fn streaming_generation_matches_batch(cfg in config()) {
        let batch = cfg.try_generate();
        let streamed = cfg.try_generate_streaming();
        match (batch, streamed) {
            (Ok(b), Ok(s)) => {
                prop_assert_eq!(sparse_json(&s), sparse_json(&b), "streaming generation drifted");
            }
            (Err(b), Err(s)) => prop_assert_eq!(format!("{s}"), format!("{b}")),
            (b, s) => prop_assert!(
                false,
                "paths disagree on validity: batch {:?}, streaming {:?}",
                b.is_ok(),
                s.is_ok()
            ),
        }
    }
}
