//! Acceptance pin for the partitioned engine on *generated* reference
//! scenarios (the paper's default geometry, scaled down): with spatial
//! tile partitions of 1–8 tiles,
//!
//! * `Serial` mode reproduces the single-threaded decision sequence
//!   byte-identically (same `MoveRec`s in the same order) and the same
//!   final association, and
//! * `Simultaneous` mode reproduces the outcome and trace as well.
//!
//! The unit/property suites in `mcast-core` cover random hand-built
//! instances; this test covers the geometric partitions actually used by
//! the bench harness.

use mcast_core::{
    run_distributed_partitioned_traced, run_distributed_traced, Association, DecisionOrder,
    DistributedConfig, DistributedOutcome, ExecutionMode, Load, Policy,
};
use mcast_topology::{tile_partition, ScenarioConfig};

fn outcomes_match(par: &DistributedOutcome, single: &DistributedOutcome, ctx: &str) {
    assert_eq!(
        &par.association, &single.association,
        "association diverged: {ctx}"
    );
    assert_eq!(par.rounds, single.rounds, "rounds diverged: {ctx}");
    assert_eq!(par.moves, single.moves, "moves diverged: {ctx}");
    assert_eq!(par.converged, single.converged, "converged diverged: {ctx}");
    assert_eq!(
        par.cycle_detected, single.cycle_detected,
        "cycle flag diverged: {ctx}"
    );
}

#[test]
fn reference_scenarios_byte_identical() {
    for (n_aps, n_users, seed) in [(30usize, 80usize, 0u64), (60, 150, 3)] {
        let scenario = ScenarioConfig {
            n_aps,
            n_users,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(seed)
        .generate();
        let inst = &scenario.instance;
        for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
            for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
                for order in [DecisionOrder::ById, DecisionOrder::Shuffled(seed + 1)] {
                    let config = DistributedConfig {
                        policy,
                        mode,
                        order,
                        max_rounds: 60,
                        hysteresis: Load::ZERO,
                        ..DistributedConfig::default()
                    };
                    let (single, strace) =
                        run_distributed_traced(inst, &config, Association::empty(inst.n_users()));
                    for w in [1usize, 2, 4, 8] {
                        let part = tile_partition(&scenario, w);
                        let (par, ptrace) = run_distributed_partitioned_traced(
                            inst,
                            &config,
                            Association::empty(inst.n_users()),
                            &part,
                        )
                        .unwrap();
                        let ctx = format!(
                            "{n_aps} APs / {n_users} users seed {seed}, {mode:?}/{policy:?}/{order:?}, W={w}"
                        );
                        outcomes_match(&par, &single, &ctx);
                        assert_eq!(ptrace, strace, "decision sequence diverged: {ctx}");
                    }
                }
            }
        }
    }
}
