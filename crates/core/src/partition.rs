//! Partitioned parallel execution of the distributed association rules.
//!
//! The paper's local decision rules read only the APs inside a user's
//! coverage disk, so a large WLAN decomposes spatially: partition the APs
//! and users into `W` tiles, give each tile to a worker thread that owns a
//! private slice of the load ledger, and exchange only the state of
//! *boundary* APs — those reachable from another tile — at deterministic
//! synchronization points. [`run_distributed_partitioned`] is the parallel
//! driver; it is **bit-for-bit equivalent** to
//! [`run_distributed`](crate::distributed::run_distributed), which remains
//! the `W = 1` path and the equivalence oracle.
//!
//! # Architecture
//!
//! * [`Partition`] assigns every AP and user to a tile and classifies each
//!   AP as *interior* (reachable only from its own tile) or *boundary*
//!   (reachable from some other tile). Users with a boundary candidate AP
//!   are themselves *boundary users*. The geometric tilers in
//!   `mcast-topology` build partitions from `SpatialGrid` cell
//!   coordinates; [`Partition::contiguous`] is a geometry-free fallback.
//! * Each worker holds a [`TileLedger`]: exact per-(AP, session) rate
//!   multisets — the same representation as
//!   [`LoadLedger`](crate::assoc::LoadLedger) — but only for the APs its
//!   own users can reach. Tracked APs of *other* tiles are read-only ghost
//!   replicas, updated by applying [`MoveRec`] deltas shipped over
//!   `std::sync::mpsc` channels at round barriers (the halo exchange).
//!   Because the ledger state of an AP is a pure function of its member
//!   multiset and [`Load`](crate::load::Load) arithmetic is exact
//!   rational, delta application commutes — replicas converge to the
//!   identical state no matter which order the deltas arrive in. Deltas
//!   are nevertheless merged in ascending tile index so even intermediate
//!   states are schedule-independent.
//! * [`ExecutionMode::Simultaneous`] parallelizes directly: every
//!   decision reads the frozen round-start state, so workers decide their
//!   own users independently and the round barrier merges the moves.
//! * [`ExecutionMode::Serial`] must reproduce the *exact* single-threaded
//!   decision sequence. Interior users only ever read interior APs of
//!   their own tile (if a user could read another tile's AP, that AP
//!   would be boundary and the user a boundary user), so they run
//!   concurrently, wavefront-style. Boundary users are sequenced on a
//!   rank chain — a mutex + condvar protecting the next global boundary
//!   rank and the log of boundary moves — so each one decides exactly at
//!   its position of the global [`DecisionOrder`], seeing every earlier
//!   boundary move.
//!
//! # Determinism
//!
//! The outcome (association, rounds, moves, convergence and cycle flags,
//! and the full decision trace) is independent of thread scheduling and
//! identical to the single-threaded engine for every `W`; the
//! `partition_equivalence` proptest suite pins this across policies,
//! modes, hysteresis settings and worker counts.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::assoc::Association;
use crate::checkpoint::{PartitionCheckpoint, CHECKPOINT_SCHEMA};
use crate::distributed::{
    continue_distributed, local_decision_scratch, ApStateView, DecisionScratch, DistributedConfig,
    DistributedOutcome, ExecutionMode,
};
use crate::ids::{ApId, SessionId, UserId};
use crate::instance::Instance;
use crate::load::Load;
use crate::rate::Kbps;
use crate::supervise::{
    ChaosPlan, FailureKind, RecoveryReport, ReplyFate, SuperviseOptions, WorkerFailure,
};

/// One applied association change: the unit of the halo exchange and of
/// decision traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRec {
    /// The 1-based round the move was applied in.
    pub round: u32,
    /// Position of the deciding user in the round's reference decision
    /// sequence: the index into the [`DecisionOrder`](crate::DecisionOrder)
    /// permutation in `Serial` mode, the raw user id in `Simultaneous`
    /// mode (which visits users in ascending id). Sorting a trace by
    /// `(round, pos)` therefore reproduces the exact order in which the
    /// single-threaded engine applies moves.
    pub pos: u32,
    /// The user that moved.
    pub user: UserId,
    /// The AP it left (`None` for an initial join).
    pub from: Option<ApId>,
    /// The AP it joined.
    pub to: ApId,
}

/// Why a [`Partition`] could not be built, or a partitioned run could
/// not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// `n_tiles` was zero — at least one tile is required.
    NoTiles,
    /// The AP or user tile assignment had the wrong length for the
    /// instance.
    WrongSize,
    /// An assignment named a tile index `>= n_tiles`.
    TileOutOfRange,
    /// The initial association puts a user on an AP outside its range
    /// (the single-threaded ledger panics on this; the partitioned
    /// driver reports it as a typed error).
    InvalidInitialAssociation {
        /// The misassociated user.
        user: UserId,
        /// The AP it cannot reach.
        ap: ApId,
    },
    /// A resume checkpoint did not match the instance or schema.
    BadCheckpoint(&'static str),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoTiles => write!(f, "a partition needs at least one tile"),
            PartitionError::WrongSize => {
                write!(f, "tile assignment length does not match the instance")
            }
            PartitionError::TileOutOfRange => {
                write!(f, "tile assignment names a tile index >= n_tiles")
            }
            PartitionError::InvalidInitialAssociation { user, ap } => {
                write!(f, "initial association puts {user} out of range of {ap}")
            }
            PartitionError::BadCheckpoint(why) => write!(f, "bad checkpoint: {why}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A tiling of an instance's APs and users, with every AP classified as
/// interior or boundary (see the [module docs](self)).
///
/// The classification is derived from the instance's *exact* reachability
/// (an AP is boundary iff some user of another tile can reach it), so it
/// is a sound — and tight — refinement of the geometric "coverage disk
/// crosses a tile edge" test: any AP whose disk stays strictly inside its
/// tile is interior here too.
#[derive(Debug, Clone)]
pub struct Partition {
    n_tiles: usize,
    ap_tile: Vec<u32>,
    user_tile: Vec<u32>,
    boundary_ap: Vec<bool>,
    boundary_user: Vec<bool>,
}

impl Partition {
    /// Builds a partition from explicit per-AP and per-user tile
    /// assignments, deriving the boundary classification from the
    /// instance's reachability.
    pub fn new(
        inst: &Instance,
        n_tiles: usize,
        ap_tile: Vec<u32>,
        user_tile: Vec<u32>,
    ) -> Result<Partition, PartitionError> {
        if n_tiles == 0 {
            return Err(PartitionError::NoTiles);
        }
        if ap_tile.len() != inst.n_aps() || user_tile.len() != inst.n_users() {
            return Err(PartitionError::WrongSize);
        }
        if ap_tile
            .iter()
            .chain(user_tile.iter())
            .any(|&t| t as usize >= n_tiles)
        {
            return Err(PartitionError::TileOutOfRange);
        }
        // An AP is boundary iff a user of another tile can reach it; a
        // user is boundary iff one of its candidate APs is boundary.
        let mut boundary_ap = vec![false; inst.n_aps()];
        for ap in inst.aps() {
            let t = ap_tile[ap.index()];
            boundary_ap[ap.index()] = inst
                .reachable_users(ap)
                .iter()
                .any(|&u| user_tile[u.index()] != t);
        }
        let mut boundary_user = vec![false; inst.n_users()];
        for u in inst.users() {
            boundary_user[u.index()] = inst
                .candidate_aps(u)
                .iter()
                .any(|&(a, _)| boundary_ap[a.index()]);
        }
        Ok(Partition {
            n_tiles,
            ap_tile,
            user_tile,
            boundary_ap,
            boundary_user,
        })
    }

    /// A geometry-free partition striping APs into `n_tiles` contiguous
    /// id ranges; each user follows its first candidate AP (users with no
    /// candidates land on tile 0). Useful as a fallback and for tests —
    /// the spatial tiler in `mcast-topology` produces far fewer boundary
    /// APs on generated scenarios.
    pub fn contiguous(inst: &Instance, n_tiles: usize) -> Result<Partition, PartitionError> {
        if n_tiles == 0 {
            return Err(PartitionError::NoTiles);
        }
        let n_aps = inst.n_aps().max(1);
        let ap_tile: Vec<u32> = (0..inst.n_aps())
            .map(|i| (i * n_tiles / n_aps) as u32)
            .collect();
        let user_tile: Vec<u32> = inst
            .users()
            .map(|u| {
                inst.candidate_aps(u)
                    .first()
                    .map_or(0, |&(a, _)| ap_tile[a.index()])
            })
            .collect();
        Partition::new(inst, n_tiles, ap_tile, user_tile)
    }

    /// The trivial one-tile partition (everything interior).
    pub fn single(inst: &Instance) -> Partition {
        Partition::contiguous(inst, 1).expect("one tile is always valid")
    }

    /// Number of tiles (= worker threads of the partitioned driver).
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// The tile AP `a` belongs to.
    pub fn ap_tile(&self, a: ApId) -> usize {
        self.ap_tile[a.index()] as usize
    }

    /// The tile user `u` belongs to.
    pub fn user_tile(&self, u: UserId) -> usize {
        self.user_tile[u.index()] as usize
    }

    /// True if some user of another tile can reach `a`.
    pub fn is_boundary_ap(&self, a: ApId) -> bool {
        self.boundary_ap[a.index()]
    }

    /// True if `u` has a boundary AP among its candidates.
    pub fn is_boundary_user(&self, u: UserId) -> bool {
        self.boundary_user[u.index()]
    }

    /// Number of boundary APs (the halo-exchange working set).
    pub fn boundary_ap_count(&self) -> usize {
        self.boundary_ap.iter().filter(|&&b| b).count()
    }

    /// Number of boundary users (the serially-sequenced fraction in
    /// `Serial` mode).
    pub fn boundary_user_count(&self) -> usize {
        self.boundary_user.iter().filter(|&&b| b).count()
    }
}

/// Sentinel for an AP the tile ledger does not track.
const UNTRACKED: u32 = u32::MAX;
/// Sentinel for an empty (AP, session) slot (same as the global ledger).
const NO_RATE: u32 = u32::MAX;

/// A worker's slice of the load ledger: exact per-(AP, session) member
/// rate multisets — the same representation and arithmetic as
/// [`LoadLedger`](crate::assoc::LoadLedger) — restricted to the APs the
/// tile's own users can reach. Tracked APs of other tiles are ghost
/// replicas kept identical to the owner's state by replaying [`MoveRec`]
/// deltas; untracked APs are skipped (their state can never influence an
/// own user's decision).
#[derive(Debug)]
struct TileLedger<'a> {
    inst: &'a Instance,
    /// Global AP index → tracked-slot index, or [`UNTRACKED`].
    local: Vec<u32>,
    /// `counts[slot(a, s) * n_rates + rate_idx]` members, tracked APs only.
    counts: Vec<u32>,
    /// Minimum occupied rate index per (tracked AP, session) slot.
    min_rate: Vec<u32>,
    /// Cached load per tracked AP.
    loads: Vec<Load>,
    n_rates: usize,
    n_sessions: usize,
    /// Current AP per user. Own users are authoritative; other tiles'
    /// users are a *shadow* updated from shipped halo deltas, exact for
    /// every tracked AP (a remote move touching a tracked AP is always
    /// shipped, because any tracked AP a remote user can reach is by
    /// definition boundary) and possibly stale only at untracked APs,
    /// which no decision and no audit ever reads.
    assoc: Vec<Option<ApId>>,
}

impl<'a> TileLedger<'a> {
    /// Builds the tile's slice: tracked APs are the union of the own
    /// users' candidate sets; every user of `initial` associated with a
    /// tracked AP is counted into it (other tiles' members contribute to
    /// ghost state too — `load_if_left` of a shared AP depends on the
    /// full member multiset).
    fn new(inst: &'a Instance, initial: &Association, own: &[(u32, UserId)]) -> TileLedger<'a> {
        let mut local = vec![UNTRACKED; inst.n_aps()];
        let mut tracked = 0u32;
        for &(_, u) in own {
            for &(a, _) in inst.candidate_aps(u) {
                if local[a.index()] == UNTRACKED {
                    local[a.index()] = 0; // numbered below, in ascending id
                    tracked += 1;
                }
            }
        }
        let mut next = 0u32;
        for l in local.iter_mut() {
            if *l != UNTRACKED {
                *l = next;
                next += 1;
            }
        }
        let n_rates = inst.supported_rates().len();
        let n_sessions = inst.n_sessions();
        let slots = tracked as usize * n_sessions;
        let mut ledger = TileLedger {
            inst,
            local,
            counts: vec![0; slots * n_rates],
            min_rate: vec![NO_RATE; slots],
            loads: vec![Load::ZERO; tracked as usize],
            n_rates,
            n_sessions,
            assoc: initial.to_vec(),
        };
        for (i, ap) in initial.iter().enumerate() {
            if let Some(a) = ap {
                ledger.count_join(UserId(i as u32), a);
            }
        }
        ledger
    }

    fn lidx(&self, a: ApId) -> Option<usize> {
        let l = self.local[a.index()];
        (l != UNTRACKED).then_some(l as usize)
    }

    fn rate_idx(&self, rate: Kbps) -> usize {
        self.inst
            .supported_rates()
            .binary_search(&rate)
            .expect("multicast rate is in the supported set")
    }

    fn slot(&self, li: usize, s: SessionId) -> usize {
        li * self.n_sessions + s.index()
    }

    /// Counts `u` into tracked AP `a`'s member multiset (no-op when `a`
    /// is untracked). Does not touch `assoc` — ghost members are counted
    /// but not owned.
    fn count_join(&mut self, u: UserId, a: ApId) {
        let Some(li) = self.lidx(a) else { return };
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("joining user is in range");
        let slot = self.slot(li, s);
        let base = slot * self.n_rates;
        let u_idx = self.rate_idx(u_rate);
        let rates = self.inst.supported_rates();
        let old = self.min_rate[slot];
        let old_part = if old == NO_RATE {
            Load::ZERO
        } else {
            Load::per_transmission(stream, rates[old as usize])
        };
        self.counts[base + u_idx] += 1;
        if old == NO_RATE || (u_idx as u32) < old {
            self.min_rate[slot] = u_idx as u32;
        }
        let new_part = Load::per_transmission(stream, rates[self.min_rate[slot] as usize]);
        self.loads[li] = self.loads[li] - old_part + new_part;
    }

    /// Removes `u` from tracked AP `a`'s member multiset (no-op when `a`
    /// is untracked).
    fn count_leave(&mut self, u: UserId, a: ApId) {
        let Some(li) = self.lidx(a) else { return };
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("leaving user was in range");
        let slot = self.slot(li, s);
        let base = slot * self.n_rates;
        let u_idx = self.rate_idx(u_rate);
        let rates = self.inst.supported_rates();
        let min_idx = self.min_rate[slot];
        debug_assert_ne!(min_idx, NO_RATE, "leave from an empty slot");
        let old_part = Load::per_transmission(stream, rates[min_idx as usize]);
        self.counts[base + u_idx] -= 1;
        if self.counts[base + u_idx] == 0 && min_idx == u_idx as u32 {
            // The minimum emptied: advance to the next occupied rate.
            self.min_rate[slot] = self.counts[base + u_idx + 1..base + self.n_rates]
                .iter()
                .position(|&c| c > 0)
                .map_or(NO_RATE, |off| (u_idx + 1 + off) as u32);
        }
        let new_part = match self.min_rate[slot] {
            NO_RATE => Load::ZERO,
            m => Load::per_transmission(stream, rates[m as usize]),
        };
        self.loads[li] = self.loads[li] - old_part + new_part;
    }

    /// Applies a move by one of this tile's own users (endpoints are
    /// candidates of the mover, hence always tracked).
    fn apply_own(&mut self, rec: &MoveRec) {
        debug_assert_eq!(self.assoc[rec.user.index()], rec.from);
        if let Some(f) = rec.from {
            self.count_leave(rec.user, f);
        }
        self.count_join(rec.user, rec.to);
        self.assoc[rec.user.index()] = Some(rec.to);
    }

    /// Applies another tile's move to the ghost replicas: pure count
    /// deltas, skipping untracked endpoints. The shadow association
    /// follows so the drift auditor can rebuild membership from scratch.
    fn apply_remote(&mut self, rec: &MoveRec) {
        if let Some(f) = rec.from {
            self.count_leave(rec.user, f);
        }
        self.count_join(rec.user, rec.to);
        self.assoc[rec.user.index()] = Some(rec.to);
    }

    /// Ghost-replica drift auditor: rebuilds every tracked *boundary*
    /// AP's per-session member multiset from the shadow association and
    /// compares it against the incrementally maintained ghost state —
    /// counts, cached min-rate index, and cached load. Panics with a
    /// named report of the first diverging (AP, session, rate) entry;
    /// under supervision that quarantines the tile instead of poisoning
    /// the run.
    fn audit_ghosts(&self, part: &Partition) {
        let rates = self.inst.supported_rates();
        for a in self.inst.aps() {
            let Some(li) = self.lidx(a) else { continue };
            if !part.is_boundary_ap(a) {
                continue;
            }
            let mut rebuilt = vec![0u32; self.n_sessions * self.n_rates];
            for &u in self.inst.reachable_users(a) {
                if self.assoc[u.index()] == Some(a) {
                    let r = self.rate_idx(
                        self.inst
                            .multicast_rate_to(a, u)
                            .expect("member is in range"),
                    );
                    rebuilt[self.inst.user_session(u).index() * self.n_rates + r] += 1;
                }
            }
            let mut load = Load::ZERO;
            for s in self.inst.sessions() {
                let slot = self.slot(li, s);
                let base = s.index() * self.n_rates;
                for r in 0..self.n_rates {
                    let have = self.counts[slot * self.n_rates + r];
                    let want = rebuilt[base + r];
                    assert!(
                        have == want,
                        "ghost drift at ({a}, {s}, rate {rate}): \
                         ledger counts {have} members, rebuild counts {want}",
                        rate = rates[r],
                    );
                }
                let min = rebuilt[base..base + self.n_rates]
                    .iter()
                    .position(|&c| c > 0);
                let want_min = min.map_or(NO_RATE, |m| m as u32);
                assert!(
                    self.min_rate[slot] == want_min,
                    "ghost drift at ({a}, {s}): ledger min-rate index {have} != rebuilt {want_min}",
                    have = self.min_rate[slot],
                );
                if let Some(m) = min {
                    load += Load::per_transmission(self.inst.session_rate(s), rates[m]);
                }
            }
            assert!(
                self.loads[li] == load,
                "ghost drift at {a}: cached load {:?} != rebuilt {:?}",
                self.loads[li],
                load,
            );
        }
    }
}

impl ApStateView for TileLedger<'_> {
    fn instance(&self) -> &Instance {
        self.inst
    }
    fn reachable_aps_into(&self, u: UserId, out: &mut Vec<ApId>) {
        out.clear();
        out.extend(self.inst.candidate_aps(u).iter().map(|&(a, _)| a));
    }
    fn ap_of(&self, u: UserId) -> Option<ApId> {
        self.assoc[u.index()]
    }
    fn ap_load(&self, a: ApId) -> Load {
        let li = self.lidx(a).expect("decisions read only tracked APs");
        self.loads[li]
    }
    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        let li = self.lidx(a)?;
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u)?;
        let stream = self.inst.session_rate(s);
        let slot = self.slot(li, s);
        let rates = self.inst.supported_rates();
        let cur = self.min_rate[slot];
        let u_idx = self.rate_idx(u_rate);
        let (old_part, new_min) = if cur == NO_RATE {
            (Load::ZERO, u_idx as u32)
        } else {
            (
                Load::per_transmission(stream, rates[cur as usize]),
                cur.min(u_idx as u32),
            )
        };
        let new_part = Load::per_transmission(stream, rates[new_min as usize]);
        Some(self.loads[li] - old_part + new_part)
    }
    fn load_if_left(&self, u: UserId) -> Option<Load> {
        let a = self.assoc[u.index()]?;
        let li = self.lidx(a).expect("an own user's AP is tracked");
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("associated user in range");
        let slot = self.slot(li, s);
        let base = slot * self.n_rates;
        let rates = self.inst.supported_rates();
        let min_idx = self.min_rate[slot] as usize;
        let old_part = Load::per_transmission(stream, rates[min_idx]);
        let u_idx = self.rate_idx(u_rate);
        let new_tx = if self.counts[base + u_idx] > 1 {
            Some(rates[min_idx]) // another member shares u's rate
        } else if u_idx == min_idx {
            self.counts[base + u_idx + 1..base + self.n_rates]
                .iter()
                .position(|&c| c > 0)
                .map(|off| rates[u_idx + 1 + off])
        } else {
            Some(rates[min_idx]) // a slower member pins the rate
        };
        let new_part = new_tx.map_or(Load::ZERO, |tx| Load::per_transmission(stream, tx));
        Some(self.loads[li] - old_part + new_part)
    }
}

/// The rank chain sequencing boundary users in `Serial` mode: a worker
/// about to decide the boundary user of global rank `r` blocks until
/// every earlier boundary user (of any tile) has decided, and reads their
/// moves from the shared log.
struct BoundaryChain {
    state: Mutex<ChainState>,
    cv: Condvar,
}

struct ChainState {
    /// The global boundary rank allowed to decide next.
    next_rank: usize,
    /// Boundary moves of the current round, tagged with the mover's tile.
    log: Vec<(u32, MoveRec)>,
    /// Set when a worker failed (or the coordinator gave up on the
    /// round): waiters bail out instead of blocking forever, and the
    /// round is void.
    aborted: bool,
}

impl BoundaryChain {
    fn new() -> BoundaryChain {
        BoundaryChain {
            state: Mutex::new(ChainState {
                next_rank: 0,
                log: Vec::new(),
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Locks the chain, tolerating poison: a worker panicking under
    /// `catch_unwind` while holding the guard poisons the mutex, but the
    /// state itself stays consistent (panic sites never leave a
    /// half-pushed log) and the aborted round is discarded anyway.
    fn lock(&self) -> MutexGuard<'_, ChainState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until `next_rank == rank` — or the chain is aborted,
    /// which callers must check on the returned guard. Also the
    /// end-of-round barrier (`rank` = total boundary users).
    fn wait_for(&self, rank: usize) -> MutexGuard<'_, ChainState> {
        let mut st = self.lock();
        while st.next_rank != rank && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }

    /// Voids the round: wakes every waiter and makes further waits
    /// return immediately.
    fn abort(&self) {
        let mut st = self.lock();
        st.aborted = true;
        drop(st);
        self.cv.notify_all();
    }

    fn reset(&self) {
        let mut st = self.lock();
        st.next_rank = 0;
        st.log.clear();
        st.aborted = false;
    }
}

/// Commands from the coordinator to a worker; replies carry the round's
/// own moves back. Channels queue, so workers need no explicit barrier
/// between an `Apply` and the next `Decide`.
enum Cmd {
    /// Simultaneous: decide all dirty own users against the frozen
    /// round-start ledger; reply with the moves, keep them pending.
    Decide { round: u32 },
    /// Simultaneous: apply the round's moves — own pending list plus the
    /// boundary-filtered lists of the other tiles — in ascending tile
    /// order; acknowledge so apply/audit failures surface before the
    /// tile's next decide.
    Apply {
        round: u32,
        boundary: Arc<Vec<Vec<MoveRec>>>,
    },
    /// Serial: run the round's wavefront (interior users free-running,
    /// boundary users sequenced on the chain); reply with the own moves.
    Serial { round: u32 },
    /// Supervision: re-send the last cached reply (the coordinator
    /// missed it — dropped, or delayed past the exchange deadline).
    Resend,
    /// Shut down.
    Stop,
}

/// A worker's answer to one command: its round, and either the round's
/// own moves (empty for `Apply` acks) or the typed failure.
#[derive(Clone)]
struct Reply {
    tile: usize,
    round: u32,
    result: Result<Vec<MoveRec>, WorkerFailure>,
}

/// Sends a reply, caching it for `Cmd::Resend` and applying the chaos
/// plan's scripted fate (drop / duplicate / delay) at the send site.
fn send_reply(
    reply: Reply,
    tx: &mpsc::Sender<Reply>,
    chaos: Option<&ChaosPlan>,
    cached: &mut Option<Reply>,
) {
    *cached = Some(reply.clone());
    let fate = chaos.map_or(ReplyFate::Deliver, |c| {
        c.reply_fate(reply.tile as u32, reply.round)
    });
    match fate {
        ReplyFate::Deliver => {
            let _ = tx.send(reply);
        }
        ReplyFate::Drop => {}
        ReplyFate::Duplicate => {
            let _ = tx.send(reply.clone());
            let _ = tx.send(reply);
        }
        ReplyFate::Delay(d) => {
            std::thread::sleep(d);
            let _ = tx.send(reply);
        }
    }
}

/// One worker's state: its tile ledger, own users in processing order,
/// and the dirty-user worklist (only own users' bits are meaningful).
struct Shard<'a> {
    tile: u32,
    part: &'a Partition,
    ledger: TileLedger<'a>,
    /// Own users as `(pos, user)` in processing order: global decision
    /// order in `Serial` mode, ascending id in `Simultaneous` mode.
    own: Vec<(u32, UserId)>,
    dirty: Vec<bool>,
    scratch: DecisionScratch,
    config: &'a DistributedConfig,
    /// Simultaneous: the round's own moves, held for the apply phase.
    pending: Vec<MoveRec>,
}

impl<'a> Shard<'a> {
    fn new(
        inst: &'a Instance,
        part: &'a Partition,
        tile: u32,
        initial: &Association,
        own: Vec<(u32, UserId)>,
        config: &'a DistributedConfig,
    ) -> Shard<'a> {
        let ledger = TileLedger::new(inst, initial, &own);
        Shard {
            tile,
            part,
            ledger,
            own,
            dirty: vec![true; inst.n_users()],
            scratch: DecisionScratch::default(),
            config,
            pending: Vec::new(),
        }
    }

    fn decide(&mut self, u: UserId) -> Option<ApId> {
        local_decision_scratch(
            &self.ledger,
            u,
            self.config.policy,
            self.config.respect_budget,
            self.config.hysteresis,
            &mut self.scratch,
        )
    }

    /// Marks every own user whose view the move could have changed (the
    /// same rule as the single-threaded worklist; bits of other tiles'
    /// users are never read, so marking them too is harmless).
    fn mark_dirty(&mut self, rec: &MoveRec) {
        for &v in self.ledger.inst.reachable_users(rec.to) {
            self.dirty[v.index()] = true;
        }
        if let Some(f) = rec.from {
            for &v in self.ledger.inst.reachable_users(f) {
                self.dirty[v.index()] = true;
            }
        }
    }

    /// Simultaneous decide phase: all decisions read the frozen
    /// round-start ledger.
    fn decide_round(&mut self, round: u32) -> Vec<MoveRec> {
        self.pending.clear();
        let own = std::mem::take(&mut self.own);
        for &(pos, u) in &own {
            if !std::mem::replace(&mut self.dirty[u.index()], false) {
                continue;
            }
            if let Some(a) = self.decide(u) {
                self.pending.push(MoveRec {
                    round,
                    pos,
                    user: u,
                    from: self.ledger.ap_of(u),
                    to: a,
                });
            }
        }
        self.own = own;
        self.pending.clone()
    }

    /// Simultaneous apply phase: merge the round's moves in ascending
    /// tile order — own moves from the full pending list, other tiles'
    /// from their boundary-filtered lists.
    fn apply_round(&mut self, boundary: &[Vec<MoveRec>]) {
        for (t, list) in boundary.iter().enumerate() {
            if t == self.tile as usize {
                let pending = std::mem::take(&mut self.pending);
                for rec in &pending {
                    self.ledger.apply_own(rec);
                    self.mark_dirty(rec);
                }
            } else {
                for rec in list {
                    self.ledger.apply_remote(rec);
                    self.mark_dirty(rec);
                }
            }
        }
    }

    /// Serial wavefront: own users in global decision order; interior
    /// users run lock-free, boundary users synchronize on the chain.
    fn serial_round(
        &mut self,
        round: u32,
        chain: &BoundaryChain,
        n_boundary: usize,
        rank_of: &[u32],
    ) -> Vec<MoveRec> {
        let mut moves = Vec::new();
        let mut cursor = 0usize;
        let mut voided = false;
        let own = std::mem::take(&mut self.own);
        for &(pos, u) in &own {
            if self.part.is_boundary_user(u) {
                let mut st = chain.wait_for(rank_of[u.index()] as usize);
                if st.aborted {
                    // A peer failed: the round is void (the coordinator
                    // discards it and degrades to the W = 1 engine).
                    voided = true;
                    break;
                }
                self.drain_log(&st.log, &mut cursor);
                if std::mem::replace(&mut self.dirty[u.index()], false) {
                    if let Some(a) = self.decide(u) {
                        let rec = MoveRec {
                            round,
                            pos,
                            user: u,
                            from: self.ledger.ap_of(u),
                            to: a,
                        };
                        self.ledger.apply_own(&rec);
                        self.mark_dirty(&rec);
                        st.log.push((self.tile, rec));
                        moves.push(rec);
                    }
                }
                st.next_rank += 1;
                drop(st);
                chain.cv.notify_all();
            } else if std::mem::replace(&mut self.dirty[u.index()], false) {
                if let Some(a) = self.decide(u) {
                    let rec = MoveRec {
                        round,
                        pos,
                        user: u,
                        from: self.ledger.ap_of(u),
                        to: a,
                    };
                    self.ledger.apply_own(&rec);
                    self.mark_dirty(&rec);
                    moves.push(rec);
                }
            }
        }
        self.own = own;
        if voided {
            return moves;
        }
        // End-of-round barrier: wait for every boundary user of every
        // tile, then absorb the remaining boundary moves.
        let st = chain.wait_for(n_boundary);
        if !st.aborted {
            self.drain_log(&st.log, &mut cursor);
        }
        moves
    }

    /// Applies the not-yet-seen suffix of the boundary log (skipping own
    /// moves, which were applied when they were made).
    fn drain_log(&mut self, log: &[(u32, MoveRec)], cursor: &mut usize) {
        while *cursor < log.len() {
            let (t, rec) = log[*cursor];
            *cursor += 1;
            if t != self.tile {
                self.ledger.apply_remote(&rec);
                self.mark_dirty(&rec);
            }
        }
    }
}

/// Outcome of a supervised partitioned run: the distributed outcome
/// (identical to the fault-free run), the decision trace, and what
/// recovery had to happen along the way.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// The distributed outcome — byte-identical to `run_distributed`
    /// regardless of injected or real faults.
    pub outcome: DistributedOutcome,
    /// The decision trace sorted by `(round, pos)`; empty unless
    /// [`SuperviseOptions::trace`] (or the resumed checkpoint's
    /// `traced`) was set.
    pub trace: Vec<MoveRec>,
    /// Failures observed, retries, quarantines, degradation, and
    /// checkpoints written.
    pub recovery: RecoveryReport,
}

/// Where a (possibly resumed) run starts: the association, the next
/// round, and the carried move count / cycle history / trace prefix.
struct StartState {
    initial: Association,
    start_round: usize,
    moves: usize,
    seen_list: Vec<Vec<Option<ApId>>>,
    trace: Vec<MoveRec>,
}

impl StartState {
    fn fresh(initial: Association) -> StartState {
        let seen_list = vec![initial.to_vec()];
        StartState {
            initial,
            start_round: 1,
            moves: 0,
            seen_list,
            trace: Vec::new(),
        }
    }
}

/// Runs a distributed algorithm on `part.n_tiles()` worker threads,
/// bit-for-bit equivalent to
/// [`run_distributed`](crate::distributed::run_distributed) — identical
/// association, rounds, moves, convergence and cycle flags, and decision
/// sequence — for every partition and thread schedule (see the
/// [module docs](self) for the argument).
///
/// An initial association associating a user with an AP out of its range
/// is reported as [`PartitionError::InvalidInitialAssociation`] (the
/// single-threaded engine panics on the same input).
///
/// # Panics
///
/// Panics if `part` does not fit `inst` or `initial` has the wrong size,
/// and propagates worker panics (real bugs — including ghost-replica
/// drift caught by the debug-build auditor). Use
/// [`run_distributed_supervised`] for typed failure recovery.
pub fn run_distributed_partitioned(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    part: &Partition,
) -> Result<DistributedOutcome, PartitionError> {
    let opts = SuperviseOptions::default();
    run_supervised_impl(
        inst,
        config,
        part,
        StartState::fresh(initial),
        false,
        &opts,
        false,
    )
    .map(|s| s.outcome)
}

/// [`run_distributed_partitioned`] plus the decision trace, sorted by
/// `(round, pos)` — byte-identical to the trace of
/// [`run_distributed_traced`](crate::distributed::run_distributed_traced).
pub fn run_distributed_partitioned_traced(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    part: &Partition,
) -> Result<(DistributedOutcome, Vec<MoveRec>), PartitionError> {
    let opts = SuperviseOptions::default();
    run_supervised_impl(
        inst,
        config,
        part,
        StartState::fresh(initial),
        true,
        &opts,
        false,
    )
    .map(|s| (s.outcome, s.trace))
}

/// The supervised entry point: workers run under `catch_unwind`, the
/// halo exchange honors [`SuperviseOptions::deadline`] with bounded
/// resend retries, failures escalate along the recovery ladder
/// (retry → quarantine tile → degrade to W = 1), checkpoints are written
/// every [`SuperviseOptions::checkpoint_every`] rounds, and a
/// [`ChaosPlan`] can inject scripted faults. The outcome and trace are
/// byte-identical to the fault-free run under *any* plan.
pub fn run_distributed_supervised(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    part: &Partition,
    opts: &SuperviseOptions<'_>,
) -> Result<SupervisedOutcome, PartitionError> {
    run_supervised_impl(
        inst,
        config,
        part,
        StartState::fresh(initial),
        opts.trace,
        opts,
        true,
    )
}

/// Resumes a supervised run from a checkpoint: shards are rebuilt from
/// the checkpointed association with an all-dirty worklist (outcome- and
/// trace-neutral), and the finished run's outcome and trace are
/// byte-identical to the uninterrupted run's. The trace is continued iff
/// the checkpointed run collected one (`cp.traced`).
pub fn resume_distributed_supervised(
    inst: &Instance,
    config: &DistributedConfig,
    part: &Partition,
    cp: &PartitionCheckpoint,
    opts: &SuperviseOptions<'_>,
) -> Result<SupervisedOutcome, PartitionError> {
    cp.validate(inst)?;
    let start = StartState {
        initial: cp.association(),
        start_round: cp.round as usize + 1,
        moves: cp.moves as usize,
        seen_list: cp.seen.clone(),
        trace: cp.trace.clone(),
    };
    run_supervised_impl(inst, config, part, start, cp.traced, opts, true)
}

/// Collects one reply per still-`need`ed tile for `round`, enforcing the
/// exchange deadline: a timeout triggers up to `max_retries` resend
/// sweeps (the workers cache their last reply) before the missing tiles
/// are written off with [`FailureKind::ExchangeTimeout`]. Stale rounds
/// and duplicate deliveries are discarded by the `(round, tile)` filter.
#[allow(clippy::too_many_arguments)]
fn collect_replies(
    reply_rx: &mpsc::Receiver<Reply>,
    cmd_txs: &[mpsc::Sender<Cmd>],
    round: u32,
    need: &mut [bool],
    deadline: Option<Duration>,
    max_retries: u32,
    recovery: &mut RecoveryReport,
    mut on_ok: impl FnMut(usize, Vec<MoveRec>),
) -> Vec<WorkerFailure> {
    let mut failures = Vec::new();
    let mut retries_left = max_retries;
    while need.iter().any(|&n| n) {
        let reply = match deadline {
            None => match reply_rx.recv() {
                Ok(r) => r,
                Err(_) => {
                    timeout_missing(need, round, &mut failures);
                    break;
                }
            },
            Some(d) => match reply_rx.recv_timeout(d) {
                Ok(r) => r,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if retries_left > 0 {
                        retries_left -= 1;
                        recovery.retries += 1;
                        for (t, &n) in need.iter().enumerate() {
                            if n {
                                let _ = cmd_txs[t].send(Cmd::Resend);
                            }
                        }
                        continue;
                    }
                    timeout_missing(need, round, &mut failures);
                    break;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    timeout_missing(need, round, &mut failures);
                    break;
                }
            },
        };
        if reply.round != round || !need[reply.tile] {
            continue; // stale round, duplicate, or already-settled tile
        }
        need[reply.tile] = false;
        match reply.result {
            Ok(moves) => on_ok(reply.tile, moves),
            Err(f) => failures.push(f),
        }
    }
    failures
}

fn timeout_missing(need: &mut [bool], round: u32, failures: &mut Vec<WorkerFailure>) {
    for (t, n) in need.iter_mut().enumerate() {
        if *n {
            *n = false;
            failures.push(WorkerFailure {
                tile: t,
                round,
                kind: FailureKind::ExchangeTimeout,
            });
        }
    }
}

fn stop_workers(cmd_txs: &[mpsc::Sender<Cmd>]) {
    for tx in cmd_txs {
        let _ = tx.send(Cmd::Stop);
    }
}

fn run_supervised_impl(
    inst: &Instance,
    config: &DistributedConfig,
    part: &Partition,
    start: StartState,
    collect_trace: bool,
    opts: &SuperviseOptions<'_>,
    recover: bool,
) -> Result<SupervisedOutcome, PartitionError> {
    assert_eq!(part.ap_tile.len(), inst.n_aps(), "partition AP count");
    assert_eq!(part.user_tile.len(), inst.n_users(), "partition user count");
    assert_eq!(start.initial.len(), inst.n_users(), "association size");
    // The tile ledgers silently skip untracked APs, so the structural
    // validation the single-threaded ledger performs on construction is
    // reproduced here explicitly — as a typed error.
    for (i, ap) in start.initial.iter().enumerate() {
        if let Some(a) = ap {
            if inst.multicast_rate_to(a, UserId(i as u32)).is_none() {
                return Err(PartitionError::InvalidInitialAssociation {
                    user: UserId(i as u32),
                    ap: a,
                });
            }
        }
    }

    let w = part.n_tiles;
    let order = config.order.order(inst.n_users());

    // Per-user position in the round's decision sequence, and the global
    // rank chain over boundary users (Serial mode).
    let mut pos_of = vec![0u32; inst.n_users()];
    for (pos, &u) in order.iter().enumerate() {
        pos_of[u.index()] = pos as u32;
    }
    let mut boundary_ranked: Vec<UserId> = inst
        .users()
        .filter(|&u| part.boundary_user[u.index()])
        .collect();
    boundary_ranked.sort_unstable_by_key(|u| pos_of[u.index()]);
    let mut rank_of = vec![u32::MAX; inst.n_users()];
    for (k, &u) in boundary_ranked.iter().enumerate() {
        rank_of[u.index()] = k as u32;
    }
    let n_boundary = boundary_ranked.len();

    // Own users per tile, in the mode's processing order. A copy stays
    // with the coordinator: quarantined tiles are rebuilt from it.
    let mut own_lists: Vec<Vec<(u32, UserId)>> = vec![Vec::new(); w];
    match config.mode {
        ExecutionMode::Serial => {
            for (pos, &u) in order.iter().enumerate() {
                own_lists[part.user_tile[u.index()] as usize].push((pos as u32, u));
            }
        }
        ExecutionMode::Simultaneous => {
            for u in inst.users() {
                own_lists[part.user_tile[u.index()] as usize].push((u.0, u));
            }
        }
    }
    let own_backup = own_lists.clone();

    // A chaos plan's dropped replies are only recoverable through the
    // deadline path, so chaos implies a (short) default deadline.
    let deadline = opts
        .deadline
        .or_else(|| opts.chaos.map(|_| Duration::from_millis(250)));
    let audit = opts.audit;
    let chaos = opts.chaos;

    let chain = BoundaryChain::new();
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let mut cmd_txs: Vec<mpsc::Sender<Cmd>> = Vec::with_capacity(w);
    let mut cmd_rxs: Vec<mpsc::Receiver<Cmd>> = Vec::with_capacity(w);
    for _ in 0..w {
        let (tx, rx) = mpsc::channel::<Cmd>();
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
    }

    let initial = start.initial;
    let mut global: Vec<Option<ApId>> = initial.to_vec();
    let mut trace: Vec<MoveRec> = start.trace;
    let mut seen: HashSet<Vec<Option<ApId>>> = start.seen_list.iter().cloned().collect();
    // The insertion-ordered history is only needed for checkpoints.
    let mut seen_list = if opts.sink.is_some() {
        start.seen_list
    } else {
        Vec::new()
    };
    let start_round = start.start_round;
    let start_moves = start.moves;
    let initial_ref = &initial;
    let chain_ref = &chain;
    let rank_of_ref = &rank_of;

    let (outcome, recovery) = std::thread::scope(|scope| {
        for (tile, (rx, own)) in cmd_rxs.into_iter().zip(own_lists).enumerate() {
            let reply_tx = reply_tx.clone();
            scope.spawn(move || {
                let mut shard = Shard::new(inst, part, tile as u32, initial_ref, own, config);
                // Once a worker fails it stays failed: its ledger may be
                // inconsistent, so every later command is refused with
                // the original failure.
                let mut dead: Option<WorkerFailure> = None;
                let mut cached: Option<Reply> = None;
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Decide { round } => {
                            let result = match &dead {
                                Some(f) => Err(f.clone()),
                                None => catch_unwind(AssertUnwindSafe(|| {
                                    if let Some(c) = chaos {
                                        if c.panic_due(tile as u32, round) {
                                            panic!("chaos: injected worker panic");
                                        }
                                    }
                                    shard.decide_round(round)
                                }))
                                .map_err(|p| {
                                    let f = WorkerFailure::from_panic(tile, round, p.as_ref());
                                    dead = Some(f.clone());
                                    f
                                }),
                            };
                            send_reply(
                                Reply {
                                    tile,
                                    round,
                                    result,
                                },
                                &reply_tx,
                                chaos,
                                &mut cached,
                            );
                        }
                        Cmd::Apply { round, boundary } => {
                            let result = match &dead {
                                Some(f) => Err(f.clone()),
                                None => catch_unwind(AssertUnwindSafe(|| {
                                    shard.apply_round(&boundary);
                                    if audit {
                                        shard.ledger.audit_ghosts(part);
                                    }
                                    Vec::new()
                                }))
                                .map_err(|p| {
                                    let f = WorkerFailure::from_panic(tile, round, p.as_ref());
                                    dead = Some(f.clone());
                                    f
                                }),
                            };
                            send_reply(
                                Reply {
                                    tile,
                                    round,
                                    result,
                                },
                                &reply_tx,
                                chaos,
                                &mut cached,
                            );
                        }
                        Cmd::Serial { round } => {
                            let result = match &dead {
                                Some(f) => Err(f.clone()),
                                None => catch_unwind(AssertUnwindSafe(|| {
                                    if let Some(c) = chaos {
                                        if c.panic_due(tile as u32, round) {
                                            panic!("chaos: injected worker panic");
                                        }
                                    }
                                    let moves = shard.serial_round(
                                        round,
                                        chain_ref,
                                        n_boundary,
                                        rank_of_ref,
                                    );
                                    if audit {
                                        shard.ledger.audit_ghosts(part);
                                    }
                                    moves
                                }))
                                .map_err(|p| {
                                    // Release peers blocked on the chain.
                                    chain_ref.abort();
                                    let f = WorkerFailure::from_panic(tile, round, p.as_ref());
                                    dead = Some(f.clone());
                                    f
                                }),
                            };
                            send_reply(
                                Reply {
                                    tile,
                                    round,
                                    result,
                                },
                                &reply_tx,
                                chaos,
                                &mut cached,
                            );
                        }
                        Cmd::Resend => {
                            if let Some(r) = &cached {
                                let _ = reply_tx.send(r.clone());
                            }
                        }
                        Cmd::Stop => break,
                    }
                }
            });
        }

        let mut moves_total = start_moves;
        let mut recovery = RecoveryReport::default();
        // alive[t]: the worker still gets commands. A quarantined tile's
        // shard is recomputed inline by the coordinator instead.
        let mut alive = vec![true; w];
        let mut inline: Vec<Option<Shard>> = (0..w).map(|_| None).collect();
        let mut result: Option<DistributedOutcome> = None;
        let mut degraded: Option<usize> = None;

        'rounds: for round in start_round..=config.max_rounds {
            let r32 = round as u32;
            let mut per_tile: Vec<Vec<MoveRec>> = vec![Vec::new(); w];
            let mut changed = false;
            match config.mode {
                ExecutionMode::Simultaneous => {
                    for (t, tx) in cmd_txs.iter().enumerate() {
                        if alive[t] {
                            let _ = tx.send(Cmd::Decide { round: r32 });
                        }
                    }
                    for (t, shard) in inline.iter_mut().enumerate() {
                        if let Some(shard) = shard {
                            per_tile[t] = shard.decide_round(r32);
                        }
                    }
                    let mut need = alive.clone();
                    let failures = collect_replies(
                        &reply_rx,
                        &cmd_txs,
                        r32,
                        &mut need,
                        deadline,
                        opts.max_retries,
                        &mut recovery,
                        |t, m| per_tile[t] = m,
                    );
                    for f in failures {
                        if !recover {
                            stop_workers(&cmd_txs);
                            panic!("{f}");
                        }
                        let t = f.tile;
                        recovery.failures.push(f);
                        recovery.quarantined.push(t);
                        alive[t] = false;
                        // Quarantine: rebuild the tile from the
                        // round-start global state (the TileLedger is a
                        // pure function of it) and recompute its round
                        // inline; all-dirty is decision-neutral.
                        let snap = Association::from_vec(global.clone());
                        let mut shard =
                            Shard::new(inst, part, t as u32, &snap, own_backup[t].clone(), config);
                        per_tile[t] = shard.decide_round(r32);
                        inline[t] = Some(shard);
                    }
                    // Merge in fixed tile-index order (order-free for the
                    // global association — each user moves at most once
                    // per round — but fixed anyway so every observable is
                    // schedule-independent).
                    for list in &per_tile {
                        for rec in list {
                            global[rec.user.index()] = Some(rec.to);
                            moves_total += 1;
                            changed = true;
                        }
                        if collect_trace {
                            trace.extend_from_slice(list);
                        }
                    }
                    // Halo exchange: ship each tile's boundary-AP moves;
                    // interior moves are invisible outside their tile and
                    // each worker already holds its own full list.
                    let shipped: Arc<Vec<Vec<MoveRec>>> = Arc::new(
                        per_tile
                            .iter()
                            .map(|list| {
                                list.iter()
                                    .copied()
                                    .filter(|r| {
                                        part.boundary_ap[r.to.index()]
                                            || r.from.is_some_and(|f| part.boundary_ap[f.index()])
                                    })
                                    .collect()
                            })
                            .collect(),
                    );
                    for (t, tx) in cmd_txs.iter().enumerate() {
                        if alive[t] {
                            let _ = tx.send(Cmd::Apply {
                                round: r32,
                                boundary: Arc::clone(&shipped),
                            });
                        }
                    }
                    for shard in inline.iter_mut().flatten() {
                        shard.apply_round(&shipped);
                        if audit {
                            shard.ledger.audit_ghosts(part);
                        }
                    }
                    // Collect the apply acks: an apply or audit failure
                    // must surface before the tile's next decide, or its
                    // corrupt ledger would poison later rounds.
                    let mut need = alive.clone();
                    let failures = collect_replies(
                        &reply_rx,
                        &cmd_txs,
                        r32,
                        &mut need,
                        deadline,
                        opts.max_retries,
                        &mut recovery,
                        |_t, _m| {},
                    );
                    for f in failures {
                        if !recover {
                            stop_workers(&cmd_txs);
                            panic!("{f}");
                        }
                        let t = f.tile;
                        recovery.failures.push(f);
                        recovery.quarantined.push(t);
                        alive[t] = false;
                        // The merge already advanced `global` past this
                        // round, so the replacement shard starts at the
                        // post-round state, ready for the next decide.
                        let snap = Association::from_vec(global.clone());
                        let shard =
                            Shard::new(inst, part, t as u32, &snap, own_backup[t].clone(), config);
                        inline[t] = Some(shard);
                    }
                }
                ExecutionMode::Serial => {
                    chain.reset();
                    for tx in &cmd_txs {
                        let _ = tx.send(Cmd::Serial { round: r32 });
                    }
                    let mut need = vec![true; w];
                    let failures = collect_replies(
                        &reply_rx,
                        &cmd_txs,
                        r32,
                        &mut need,
                        deadline,
                        opts.max_retries,
                        &mut recovery,
                        |t, m| per_tile[t] = m,
                    );
                    if !failures.is_empty() {
                        if !recover {
                            stop_workers(&cmd_txs);
                            panic!("{}", failures[0]);
                        }
                        recovery.failures.extend(failures);
                        // A serial round is a single global decision
                        // sequence — it cannot be patched per-tile. Void
                        // it (workers applied at most a prefix to their
                        // private ledgers, which are discarded) and
                        // degrade: recompute from the round-start state
                        // on the W = 1 engine.
                        chain.abort();
                        degraded = Some(round);
                        break 'rounds;
                    }
                    for list in &per_tile {
                        for rec in list {
                            global[rec.user.index()] = Some(rec.to);
                            moves_total += 1;
                            changed = true;
                        }
                        if collect_trace {
                            trace.extend_from_slice(list);
                        }
                    }
                }
            }

            if !changed {
                result = Some(DistributedOutcome {
                    association: Association::from_vec(global.clone()),
                    rounds: round,
                    moves: moves_total,
                    converged: true,
                    cycle_detected: false,
                });
                break;
            }
            if !seen.insert(global.clone()) {
                result = Some(DistributedOutcome {
                    association: Association::from_vec(global.clone()),
                    rounds: round,
                    moves: moves_total,
                    converged: false,
                    cycle_detected: true,
                });
                break;
            }
            if opts.sink.is_some() {
                seen_list.push(global.clone());
            }
            // Checkpoint after every K completed (non-final) rounds.
            if let (Some(k), Some(sink)) = (opts.checkpoint_every, opts.sink) {
                if k > 0 && round % k == 0 {
                    let cp = PartitionCheckpoint {
                        schema: CHECKPOINT_SCHEMA.to_string(),
                        round: r32,
                        moves: moves_total as u64,
                        assoc: global.clone(),
                        seen: seen_list.clone(),
                        trace: if collect_trace {
                            trace.clone()
                        } else {
                            Vec::new()
                        },
                        traced: collect_trace,
                    };
                    let torn = chaos.is_some_and(|c| c.checkpoint_torn(r32));
                    let res = if torn {
                        sink.save_torn(&cp)
                    } else {
                        sink.save(&cp)
                    };
                    match res {
                        Ok(()) if !torn => recovery.checkpoints_written += 1,
                        Ok(()) => {}
                        Err(_) => recovery.checkpoint_errors += 1,
                    }
                }
            }
        }

        if let Some(round) = degraded {
            recovery.degraded_at_round = Some(round);
            // Degrade to W = 1: re-run the failed round and everything
            // after it single-threaded from the round-start state,
            // carrying moves, cycle history, and trace. Checkpointing
            // stops here — the degraded tail is already the oracle.
            let carried = if collect_trace {
                Some(std::mem::take(&mut trace))
            } else {
                None
            };
            let (out, t) = continue_distributed(
                inst,
                config,
                Association::from_vec(global.clone()),
                round,
                moves_total,
                std::mem::take(&mut seen),
                carried,
            );
            if let Some(t) = t {
                trace = t;
            }
            result = Some(out);
        }

        stop_workers(&cmd_txs);
        let outcome = result.unwrap_or_else(|| DistributedOutcome {
            association: Association::from_vec(global.clone()),
            rounds: config.max_rounds,
            moves: moves_total,
            converged: false,
            cycle_detected: false,
        });
        (outcome, recovery)
    });

    trace.sort_unstable_by_key(|r| (r.round, r.pos));
    Ok(SupervisedOutcome {
        outcome,
        trace,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::{run_distributed, run_distributed_traced, DecisionOrder, Policy};
    use crate::examples_paper::{figure1_instance, figure4_instance, figure4_start};
    use crate::instance::InstanceBuilder;
    use crate::supervise::ChaosOp;

    fn outcomes_match(a: &DistributedOutcome, b: &DistributedOutcome) {
        assert_eq!(a.association, b.association);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.cycle_detected, b.cycle_detected);
    }

    /// A 3×3 AP grid split into 2×2 quadrant tiles, with one user per
    /// interesting spot. Links model unit-disk reachability of the
    /// conceptual layout:
    ///
    /// ```text
    ///   a0 a1 a2      tiles:  0 0 1
    ///   a3 a4 a5              0 0 1
    ///   a6 a7 a8              2 2 3
    /// ```
    fn quadrant_fixture() -> (Instance, Partition) {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let aps: Vec<ApId> = (0..9).map(|_| b.add_ap(Load::ONE)).collect();
        // One user "at" each AP, reaching the APs adjacent to it
        // (4-neighborhood) — u_i sits at a_i.
        let adj: [&[usize]; 9] = [
            &[0, 1, 3],
            &[1, 0, 2, 4],
            &[2, 1, 5],
            &[3, 0, 4, 6],
            &[4, 1, 3, 5, 7],
            &[5, 2, 4, 8],
            &[6, 3, 7],
            &[7, 4, 6, 8],
            &[8, 5, 7],
        ];
        for reach in adj {
            let u = b.add_user(s);
            for &ai in reach {
                b.link(aps[ai], u, Kbps::from_mbps(6)).unwrap();
            }
        }
        let inst = b.build().unwrap();
        let ap_tile = vec![0, 0, 1, 0, 0, 1, 2, 2, 3];
        let user_tile = ap_tile.clone();
        let part = Partition::new(&inst, 4, ap_tile, user_tile).unwrap();
        (inst, part)
    }

    /// Boundary classification at tile edges and corners: the corner AP
    /// of a quadrant that only inner users reach is interior; every AP on
    /// a tile edge reached from across it is boundary.
    #[test]
    fn quadrant_boundary_classification() {
        let (_inst, part) = quadrant_fixture();
        // a0 is the outer corner of tile 0: reached by u0, u1, u3 — all
        // tile 0 — so interior.
        assert!(!part.is_boundary_ap(ApId(0)));
        // a1 sits on the edge between tiles 0 and 1: u2 (tile 1) reaches
        // it — boundary. Symmetrically a3 (edge to tile 2).
        assert!(part.is_boundary_ap(ApId(1)));
        assert!(part.is_boundary_ap(ApId(3)));
        // a4 is the inner corner where all four tiles meet: u5 (tile 1)
        // and u7 (tile 2) reach it — boundary.
        assert!(part.is_boundary_ap(ApId(4)));
        // a2, the outer corner of tile 1, is reached by u1 (tile 0)
        // across the edge — boundary.
        assert!(part.is_boundary_ap(ApId(2)));
        // a8, the outer corner of tile 3, is reached only by u5 (tile 1)
        // and u7 (tile 2)? No: u5 reaches a8 and is tile 1 — boundary.
        assert!(part.is_boundary_ap(ApId(8)));
        // Users: u0 only reaches interior a0 and boundary a1/a3 — it has
        // boundary candidates, so it is a boundary user.
        assert!(part.is_boundary_user(UserId(0)));
        assert_eq!(part.n_tiles(), 4);
        assert_eq!(part.ap_tile(ApId(4)), 0);
        assert_eq!(part.user_tile(UserId(8)), 3);
    }

    /// An interior AP's users may still be interior: a two-tile line
    /// where each tile has a private AP + user.
    #[test]
    fn disjoint_tiles_have_no_boundary() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let a0 = b.add_ap(Load::ONE);
        let a1 = b.add_ap(Load::ONE);
        let u0 = b.add_user(s);
        let u1 = b.add_user(s);
        b.link(a0, u0, Kbps::from_mbps(6)).unwrap();
        b.link(a1, u1, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let part = Partition::new(&inst, 2, vec![0, 1], vec![0, 1]).unwrap();
        assert_eq!(part.boundary_ap_count(), 0);
        assert_eq!(part.boundary_user_count(), 0);
    }

    #[test]
    fn partition_validation_errors() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        assert_eq!(
            Partition::new(&inst, 0, vec![0, 0], vec![0; 5]).unwrap_err(),
            PartitionError::NoTiles
        );
        assert_eq!(
            Partition::new(&inst, 2, vec![0], vec![0; 5]).unwrap_err(),
            PartitionError::WrongSize
        );
        assert_eq!(
            Partition::new(&inst, 2, vec![0, 2], vec![0; 5]).unwrap_err(),
            PartitionError::TileOutOfRange
        );
        assert!(PartitionError::NoTiles.to_string().contains("tile"));
    }

    /// The quadrant fixture, every mode × policy × worker count: the
    /// partitioned engine reproduces the single-threaded outcome and
    /// decision trace exactly.
    #[test]
    fn quadrant_equivalence_all_modes() {
        let (inst, part) = quadrant_fixture();
        for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
            for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
                let config = DistributedConfig {
                    policy,
                    mode,
                    max_rounds: 30,
                    order: DecisionOrder::Shuffled(7),
                    ..DistributedConfig::default()
                };
                let (single, strace) =
                    run_distributed_traced(&inst, &config, Association::empty(inst.n_users()));
                let (par, ptrace) = run_distributed_partitioned_traced(
                    &inst,
                    &config,
                    Association::empty(inst.n_users()),
                    &part,
                )
                .unwrap();
                outcomes_match(&par, &single);
                assert_eq!(ptrace, strace);
            }
        }
    }

    /// Figure 4's simultaneous oscillation is detected identically by the
    /// partitioned engine (same round, same cycle flag).
    #[test]
    fn figure4_partitioned_detects_oscillation() {
        let inst = figure4_instance();
        for w in [1, 2] {
            let part = Partition::contiguous(&inst, w).unwrap();
            let config = DistributedConfig {
                mode: ExecutionMode::Simultaneous,
                ..DistributedConfig::default()
            };
            let single = run_distributed(&inst, &config, figure4_start());
            let par = run_distributed_partitioned(&inst, &config, figure4_start(), &part).unwrap();
            assert!(par.cycle_detected);
            outcomes_match(&par, &single);
        }
    }

    /// `max_rounds = 0` returns the validated initial state, like the
    /// single-threaded engine.
    #[test]
    fn zero_rounds_is_identity() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let config = DistributedConfig {
            max_rounds: 0,
            ..DistributedConfig::default()
        };
        let part = Partition::contiguous(&inst, 2).unwrap();
        let out =
            run_distributed_partitioned(&inst, &config, Association::empty(inst.n_users()), &part)
                .unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.moves, 0);
        assert!(!out.converged);
    }

    /// Out-of-range initial associations are reported as a typed error
    /// (the single-threaded engine panics on the same input).
    #[test]
    fn invalid_initial_is_typed_error() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let part = Partition::single(&inst);
        // u0 can only reach ApId(0) — associating it with ApId(1) is
        // invalid.
        let bad = Association::from_vec(vec![Some(ApId(1)), None, None, None, None]);
        let err = run_distributed_partitioned(&inst, &DistributedConfig::default(), bad, &part)
            .unwrap_err();
        assert_eq!(
            err,
            PartitionError::InvalidInitialAssociation {
                user: UserId(0),
                ap: ApId(1),
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    /// More tiles than users/APs still works (some shards are empty).
    #[test]
    fn more_tiles_than_aps() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let part = Partition::contiguous(&inst, 8).unwrap();
        let config = DistributedConfig::default();
        let single = run_distributed(&inst, &config, Association::empty(inst.n_users()));
        let par =
            run_distributed_partitioned(&inst, &config, Association::empty(inst.n_users()), &part)
                .unwrap();
        outcomes_match(&par, &single);
    }

    /// An injected worker panic is quarantined (Simultaneous) or degrades
    /// to the W = 1 engine (Serial) — either way the outcome and trace
    /// are byte-identical to the fault-free reference.
    #[test]
    fn injected_panic_is_quarantined_with_identical_outcome() {
        let (inst, part) = quadrant_fixture();
        for mode in [ExecutionMode::Simultaneous, ExecutionMode::Serial] {
            let config = DistributedConfig {
                mode,
                max_rounds: 30,
                order: DecisionOrder::Shuffled(7),
                ..DistributedConfig::default()
            };
            let (single, strace) =
                run_distributed_traced(&inst, &config, Association::empty(inst.n_users()));
            let chaos = ChaosPlan::new(vec![ChaosOp::WorkerPanic { tile: 1, round: 1 }]);
            let opts = SuperviseOptions {
                deadline: Some(Duration::from_millis(200)),
                trace: true,
                chaos: Some(&chaos),
                ..SuperviseOptions::default()
            };
            let sup = run_distributed_supervised(
                &inst,
                &config,
                Association::empty(inst.n_users()),
                &part,
                &opts,
            )
            .unwrap();
            outcomes_match(&sup.outcome, &single);
            assert_eq!(sup.trace, strace);
            assert!(!sup.recovery.clean());
            match mode {
                ExecutionMode::Simultaneous => {
                    assert!(sup.recovery.quarantined.contains(&1));
                    assert_eq!(sup.recovery.degraded_at_round, None);
                }
                ExecutionMode::Serial => {
                    assert_eq!(sup.recovery.degraded_at_round, Some(1));
                }
            }
        }
    }

    /// A dropped halo reply is recovered by the deadline + resend path
    /// (the worker caches its last reply), with an identical outcome.
    #[test]
    fn dropped_reply_is_recovered_by_resend() {
        let (inst, part) = quadrant_fixture();
        let config = DistributedConfig {
            mode: ExecutionMode::Simultaneous,
            max_rounds: 30,
            order: DecisionOrder::Shuffled(7),
            ..DistributedConfig::default()
        };
        let (single, strace) =
            run_distributed_traced(&inst, &config, Association::empty(inst.n_users()));
        let chaos = ChaosPlan::new(vec![ChaosOp::DropReply { tile: 2, round: 1 }]);
        let opts = SuperviseOptions {
            deadline: Some(Duration::from_millis(50)),
            trace: true,
            chaos: Some(&chaos),
            ..SuperviseOptions::default()
        };
        let sup = run_distributed_supervised(
            &inst,
            &config,
            Association::empty(inst.n_users()),
            &part,
            &opts,
        )
        .unwrap();
        outcomes_match(&sup.outcome, &single);
        assert_eq!(sup.trace, strace);
        assert!(
            sup.recovery.retries >= 1 || !sup.recovery.failures.is_empty(),
            "the drop must have been noticed: {:?}",
            sup.recovery
        );
    }

    /// An in-memory sink recording every checkpoint.
    struct MemSink(std::sync::Mutex<Vec<PartitionCheckpoint>>);

    impl MemSink {
        fn new() -> Self {
            MemSink(std::sync::Mutex::new(Vec::new()))
        }
    }

    impl crate::checkpoint::CheckpointSink for MemSink {
        fn save(&self, cp: &PartitionCheckpoint) -> Result<(), crate::checkpoint::CheckpointError> {
            self.0.lock().unwrap().push(cp.clone());
            Ok(())
        }
    }

    /// Resuming from *any* checkpoint of a run reproduces the
    /// uninterrupted outcome and trace byte-for-byte.
    #[test]
    fn checkpoint_restore_is_byte_identical() {
        let (inst, part) = quadrant_fixture();
        for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
            let config = DistributedConfig {
                mode,
                max_rounds: 30,
                order: DecisionOrder::Shuffled(7),
                ..DistributedConfig::default()
            };
            let sink = MemSink::new();
            let opts = SuperviseOptions {
                checkpoint_every: Some(1),
                trace: true,
                sink: Some(&sink),
                ..SuperviseOptions::default()
            };
            let full = run_distributed_supervised(
                &inst,
                &config,
                Association::empty(inst.n_users()),
                &part,
                &opts,
            )
            .unwrap();
            assert!(full.recovery.checkpoints_written >= 1);
            let cps = sink.0.lock().unwrap().clone();
            assert_eq!(cps.len(), full.recovery.checkpoints_written);
            for cp in &cps {
                let resumed = resume_distributed_supervised(
                    &inst,
                    &config,
                    &part,
                    cp,
                    &SuperviseOptions::default(),
                )
                .unwrap();
                outcomes_match(&resumed.outcome, &full.outcome);
                assert_eq!(resumed.trace, full.trace);
            }
        }
    }

    /// The drift auditor names the first diverging (AP, session, rate)
    /// entry when a ghost replica is tampered with — and stays silent on
    /// a consistent ledger.
    #[test]
    fn ghost_drift_auditor_names_the_divergence() {
        let (inst, part) = quadrant_fixture();
        // Tile 0's shard with every user parked on its home AP.
        let initial =
            Association::from_vec((0..inst.n_users()).map(|i| Some(ApId(i as u32))).collect());
        let own: Vec<(u32, UserId)> = inst
            .users()
            .filter(|&u| part.user_tile(u) == 0)
            .map(|u| (u.0, u))
            .collect();
        let mut ledger = TileLedger::new(&inst, &initial, &own);
        ledger.audit_ghosts(&part); // consistent: must not panic
                                    // Tamper: inflate the (a1, s0) member count at rate index 0.
        let li = ledger.lidx(ApId(1)).expect("a1 is tracked by tile 0");
        let slot = ledger.slot(li, SessionId(0));
        let n_rates = ledger.n_rates;
        ledger.counts[slot * n_rates] += 1;
        let tampered = std::panic::catch_unwind(AssertUnwindSafe(|| ledger.audit_ghosts(&part)));
        let payload = tampered.expect_err("tampered ledger must be reported");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("ghost drift at (ap1, s0"),
            "unexpected audit message: {msg}"
        );
    }
}
