//! Partitioned parallel execution of the distributed association rules.
//!
//! The paper's local decision rules read only the APs inside a user's
//! coverage disk, so a large WLAN decomposes spatially: partition the APs
//! and users into `W` tiles, give each tile to a worker thread that owns a
//! private slice of the load ledger, and exchange only the state of
//! *boundary* APs — those reachable from another tile — at deterministic
//! synchronization points. [`run_distributed_partitioned`] is the parallel
//! driver; it is **bit-for-bit equivalent** to
//! [`run_distributed`](crate::distributed::run_distributed), which remains
//! the `W = 1` path and the equivalence oracle.
//!
//! # Architecture
//!
//! * [`Partition`] assigns every AP and user to a tile and classifies each
//!   AP as *interior* (reachable only from its own tile) or *boundary*
//!   (reachable from some other tile). Users with a boundary candidate AP
//!   are themselves *boundary users*. The geometric tilers in
//!   `mcast-topology` build partitions from `SpatialGrid` cell
//!   coordinates; [`Partition::contiguous`] is a geometry-free fallback.
//! * Each worker holds a [`TileLedger`]: exact per-(AP, session) rate
//!   multisets — the same representation as
//!   [`LoadLedger`](crate::assoc::LoadLedger) — but only for the APs its
//!   own users can reach. Tracked APs of *other* tiles are read-only ghost
//!   replicas, updated by applying [`MoveRec`] deltas shipped over
//!   `std::sync::mpsc` channels at round barriers (the halo exchange).
//!   Because the ledger state of an AP is a pure function of its member
//!   multiset and [`Load`](crate::load::Load) arithmetic is exact
//!   rational, delta application commutes — replicas converge to the
//!   identical state no matter which order the deltas arrive in. Deltas
//!   are nevertheless merged in ascending tile index so even intermediate
//!   states are schedule-independent.
//! * [`ExecutionMode::Simultaneous`] parallelizes directly: every
//!   decision reads the frozen round-start state, so workers decide their
//!   own users independently and the round barrier merges the moves.
//! * [`ExecutionMode::Serial`] must reproduce the *exact* single-threaded
//!   decision sequence. Interior users only ever read interior APs of
//!   their own tile (if a user could read another tile's AP, that AP
//!   would be boundary and the user a boundary user), so they run
//!   concurrently, wavefront-style. Boundary users are sequenced on a
//!   rank chain — a mutex + condvar protecting the next global boundary
//!   rank and the log of boundary moves — so each one decides exactly at
//!   its position of the global [`DecisionOrder`], seeing every earlier
//!   boundary move.
//!
//! # Determinism
//!
//! The outcome (association, rounds, moves, convergence and cycle flags,
//! and the full decision trace) is independent of thread scheduling and
//! identical to the single-threaded engine for every `W`; the
//! `partition_equivalence` proptest suite pins this across policies,
//! modes, hysteresis settings and worker counts.

use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::assoc::Association;
use crate::distributed::{
    local_decision_scratch, ApStateView, DecisionScratch, DistributedConfig, DistributedOutcome,
    ExecutionMode,
};
use crate::ids::{ApId, SessionId, UserId};
use crate::instance::Instance;
use crate::load::Load;
use crate::rate::Kbps;

/// One applied association change: the unit of the halo exchange and of
/// decision traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRec {
    /// The 1-based round the move was applied in.
    pub round: u32,
    /// Position of the deciding user in the round's reference decision
    /// sequence: the index into the [`DecisionOrder`](crate::DecisionOrder)
    /// permutation in `Serial` mode, the raw user id in `Simultaneous`
    /// mode (which visits users in ascending id). Sorting a trace by
    /// `(round, pos)` therefore reproduces the exact order in which the
    /// single-threaded engine applies moves.
    pub pos: u32,
    /// The user that moved.
    pub user: UserId,
    /// The AP it left (`None` for an initial join).
    pub from: Option<ApId>,
    /// The AP it joined.
    pub to: ApId,
}

/// Why a [`Partition`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// `n_tiles` was zero — at least one tile is required.
    NoTiles,
    /// The AP or user tile assignment had the wrong length for the
    /// instance.
    WrongSize,
    /// An assignment named a tile index `>= n_tiles`.
    TileOutOfRange,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoTiles => write!(f, "a partition needs at least one tile"),
            PartitionError::WrongSize => {
                write!(f, "tile assignment length does not match the instance")
            }
            PartitionError::TileOutOfRange => {
                write!(f, "tile assignment names a tile index >= n_tiles")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A tiling of an instance's APs and users, with every AP classified as
/// interior or boundary (see the [module docs](self)).
///
/// The classification is derived from the instance's *exact* reachability
/// (an AP is boundary iff some user of another tile can reach it), so it
/// is a sound — and tight — refinement of the geometric "coverage disk
/// crosses a tile edge" test: any AP whose disk stays strictly inside its
/// tile is interior here too.
#[derive(Debug, Clone)]
pub struct Partition {
    n_tiles: usize,
    ap_tile: Vec<u32>,
    user_tile: Vec<u32>,
    boundary_ap: Vec<bool>,
    boundary_user: Vec<bool>,
}

impl Partition {
    /// Builds a partition from explicit per-AP and per-user tile
    /// assignments, deriving the boundary classification from the
    /// instance's reachability.
    pub fn new(
        inst: &Instance,
        n_tiles: usize,
        ap_tile: Vec<u32>,
        user_tile: Vec<u32>,
    ) -> Result<Partition, PartitionError> {
        if n_tiles == 0 {
            return Err(PartitionError::NoTiles);
        }
        if ap_tile.len() != inst.n_aps() || user_tile.len() != inst.n_users() {
            return Err(PartitionError::WrongSize);
        }
        if ap_tile
            .iter()
            .chain(user_tile.iter())
            .any(|&t| t as usize >= n_tiles)
        {
            return Err(PartitionError::TileOutOfRange);
        }
        // An AP is boundary iff a user of another tile can reach it; a
        // user is boundary iff one of its candidate APs is boundary.
        let mut boundary_ap = vec![false; inst.n_aps()];
        for ap in inst.aps() {
            let t = ap_tile[ap.index()];
            boundary_ap[ap.index()] = inst
                .reachable_users(ap)
                .iter()
                .any(|&u| user_tile[u.index()] != t);
        }
        let mut boundary_user = vec![false; inst.n_users()];
        for u in inst.users() {
            boundary_user[u.index()] = inst
                .candidate_aps(u)
                .iter()
                .any(|&(a, _)| boundary_ap[a.index()]);
        }
        Ok(Partition {
            n_tiles,
            ap_tile,
            user_tile,
            boundary_ap,
            boundary_user,
        })
    }

    /// A geometry-free partition striping APs into `n_tiles` contiguous
    /// id ranges; each user follows its first candidate AP (users with no
    /// candidates land on tile 0). Useful as a fallback and for tests —
    /// the spatial tiler in `mcast-topology` produces far fewer boundary
    /// APs on generated scenarios.
    pub fn contiguous(inst: &Instance, n_tiles: usize) -> Result<Partition, PartitionError> {
        if n_tiles == 0 {
            return Err(PartitionError::NoTiles);
        }
        let n_aps = inst.n_aps().max(1);
        let ap_tile: Vec<u32> = (0..inst.n_aps())
            .map(|i| (i * n_tiles / n_aps) as u32)
            .collect();
        let user_tile: Vec<u32> = inst
            .users()
            .map(|u| {
                inst.candidate_aps(u)
                    .first()
                    .map_or(0, |&(a, _)| ap_tile[a.index()])
            })
            .collect();
        Partition::new(inst, n_tiles, ap_tile, user_tile)
    }

    /// The trivial one-tile partition (everything interior).
    pub fn single(inst: &Instance) -> Partition {
        Partition::contiguous(inst, 1).expect("one tile is always valid")
    }

    /// Number of tiles (= worker threads of the partitioned driver).
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// The tile AP `a` belongs to.
    pub fn ap_tile(&self, a: ApId) -> usize {
        self.ap_tile[a.index()] as usize
    }

    /// The tile user `u` belongs to.
    pub fn user_tile(&self, u: UserId) -> usize {
        self.user_tile[u.index()] as usize
    }

    /// True if some user of another tile can reach `a`.
    pub fn is_boundary_ap(&self, a: ApId) -> bool {
        self.boundary_ap[a.index()]
    }

    /// True if `u` has a boundary AP among its candidates.
    pub fn is_boundary_user(&self, u: UserId) -> bool {
        self.boundary_user[u.index()]
    }

    /// Number of boundary APs (the halo-exchange working set).
    pub fn boundary_ap_count(&self) -> usize {
        self.boundary_ap.iter().filter(|&&b| b).count()
    }

    /// Number of boundary users (the serially-sequenced fraction in
    /// `Serial` mode).
    pub fn boundary_user_count(&self) -> usize {
        self.boundary_user.iter().filter(|&&b| b).count()
    }
}

/// Sentinel for an AP the tile ledger does not track.
const UNTRACKED: u32 = u32::MAX;
/// Sentinel for an empty (AP, session) slot (same as the global ledger).
const NO_RATE: u32 = u32::MAX;

/// A worker's slice of the load ledger: exact per-(AP, session) member
/// rate multisets — the same representation and arithmetic as
/// [`LoadLedger`](crate::assoc::LoadLedger) — restricted to the APs the
/// tile's own users can reach. Tracked APs of other tiles are ghost
/// replicas kept identical to the owner's state by replaying [`MoveRec`]
/// deltas; untracked APs are skipped (their state can never influence an
/// own user's decision).
#[derive(Debug)]
struct TileLedger<'a> {
    inst: &'a Instance,
    /// Global AP index → tracked-slot index, or [`UNTRACKED`].
    local: Vec<u32>,
    /// `counts[slot(a, s) * n_rates + rate_idx]` members, tracked APs only.
    counts: Vec<u32>,
    /// Minimum occupied rate index per (tracked AP, session) slot.
    min_rate: Vec<u32>,
    /// Cached load per tracked AP.
    loads: Vec<Load>,
    n_rates: usize,
    n_sessions: usize,
    /// Current AP per user; only this tile's own users are maintained.
    assoc: Vec<Option<ApId>>,
}

impl<'a> TileLedger<'a> {
    /// Builds the tile's slice: tracked APs are the union of the own
    /// users' candidate sets; every user of `initial` associated with a
    /// tracked AP is counted into it (other tiles' members contribute to
    /// ghost state too — `load_if_left` of a shared AP depends on the
    /// full member multiset).
    fn new(inst: &'a Instance, initial: &Association, own: &[(u32, UserId)]) -> TileLedger<'a> {
        let mut local = vec![UNTRACKED; inst.n_aps()];
        let mut tracked = 0u32;
        for &(_, u) in own {
            for &(a, _) in inst.candidate_aps(u) {
                if local[a.index()] == UNTRACKED {
                    local[a.index()] = 0; // numbered below, in ascending id
                    tracked += 1;
                }
            }
        }
        let mut next = 0u32;
        for l in local.iter_mut() {
            if *l != UNTRACKED {
                *l = next;
                next += 1;
            }
        }
        let n_rates = inst.supported_rates().len();
        let n_sessions = inst.n_sessions();
        let slots = tracked as usize * n_sessions;
        let mut ledger = TileLedger {
            inst,
            local,
            counts: vec![0; slots * n_rates],
            min_rate: vec![NO_RATE; slots],
            loads: vec![Load::ZERO; tracked as usize],
            n_rates,
            n_sessions,
            assoc: vec![None; inst.n_users()],
        };
        for (i, &ap) in initial.as_slice().iter().enumerate() {
            if let Some(a) = ap {
                ledger.count_join(UserId(i as u32), a);
            }
        }
        for &(_, u) in own {
            ledger.assoc[u.index()] = initial.ap_of(u);
        }
        ledger
    }

    fn lidx(&self, a: ApId) -> Option<usize> {
        let l = self.local[a.index()];
        (l != UNTRACKED).then_some(l as usize)
    }

    fn rate_idx(&self, rate: Kbps) -> usize {
        self.inst
            .supported_rates()
            .binary_search(&rate)
            .expect("multicast rate is in the supported set")
    }

    fn slot(&self, li: usize, s: SessionId) -> usize {
        li * self.n_sessions + s.index()
    }

    /// Counts `u` into tracked AP `a`'s member multiset (no-op when `a`
    /// is untracked). Does not touch `assoc` — ghost members are counted
    /// but not owned.
    fn count_join(&mut self, u: UserId, a: ApId) {
        let Some(li) = self.lidx(a) else { return };
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("joining user is in range");
        let slot = self.slot(li, s);
        let base = slot * self.n_rates;
        let u_idx = self.rate_idx(u_rate);
        let rates = self.inst.supported_rates();
        let old = self.min_rate[slot];
        let old_part = if old == NO_RATE {
            Load::ZERO
        } else {
            Load::per_transmission(stream, rates[old as usize])
        };
        self.counts[base + u_idx] += 1;
        if old == NO_RATE || (u_idx as u32) < old {
            self.min_rate[slot] = u_idx as u32;
        }
        let new_part = Load::per_transmission(stream, rates[self.min_rate[slot] as usize]);
        self.loads[li] = self.loads[li] - old_part + new_part;
    }

    /// Removes `u` from tracked AP `a`'s member multiset (no-op when `a`
    /// is untracked).
    fn count_leave(&mut self, u: UserId, a: ApId) {
        let Some(li) = self.lidx(a) else { return };
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("leaving user was in range");
        let slot = self.slot(li, s);
        let base = slot * self.n_rates;
        let u_idx = self.rate_idx(u_rate);
        let rates = self.inst.supported_rates();
        let min_idx = self.min_rate[slot];
        debug_assert_ne!(min_idx, NO_RATE, "leave from an empty slot");
        let old_part = Load::per_transmission(stream, rates[min_idx as usize]);
        self.counts[base + u_idx] -= 1;
        if self.counts[base + u_idx] == 0 && min_idx == u_idx as u32 {
            // The minimum emptied: advance to the next occupied rate.
            self.min_rate[slot] = self.counts[base + u_idx + 1..base + self.n_rates]
                .iter()
                .position(|&c| c > 0)
                .map_or(NO_RATE, |off| (u_idx + 1 + off) as u32);
        }
        let new_part = match self.min_rate[slot] {
            NO_RATE => Load::ZERO,
            m => Load::per_transmission(stream, rates[m as usize]),
        };
        self.loads[li] = self.loads[li] - old_part + new_part;
    }

    /// Applies a move by one of this tile's own users (endpoints are
    /// candidates of the mover, hence always tracked).
    fn apply_own(&mut self, rec: &MoveRec) {
        debug_assert_eq!(self.assoc[rec.user.index()], rec.from);
        if let Some(f) = rec.from {
            self.count_leave(rec.user, f);
        }
        self.count_join(rec.user, rec.to);
        self.assoc[rec.user.index()] = Some(rec.to);
    }

    /// Applies another tile's move to the ghost replicas: pure count
    /// deltas, skipping untracked endpoints.
    fn apply_remote(&mut self, rec: &MoveRec) {
        if let Some(f) = rec.from {
            self.count_leave(rec.user, f);
        }
        self.count_join(rec.user, rec.to);
    }
}

impl ApStateView for TileLedger<'_> {
    fn instance(&self) -> &Instance {
        self.inst
    }
    fn reachable_aps_into(&self, u: UserId, out: &mut Vec<ApId>) {
        out.clear();
        out.extend(self.inst.candidate_aps(u).iter().map(|&(a, _)| a));
    }
    fn ap_of(&self, u: UserId) -> Option<ApId> {
        self.assoc[u.index()]
    }
    fn ap_load(&self, a: ApId) -> Load {
        let li = self.lidx(a).expect("decisions read only tracked APs");
        self.loads[li]
    }
    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        let li = self.lidx(a)?;
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u)?;
        let stream = self.inst.session_rate(s);
        let slot = self.slot(li, s);
        let rates = self.inst.supported_rates();
        let cur = self.min_rate[slot];
        let u_idx = self.rate_idx(u_rate);
        let (old_part, new_min) = if cur == NO_RATE {
            (Load::ZERO, u_idx as u32)
        } else {
            (
                Load::per_transmission(stream, rates[cur as usize]),
                cur.min(u_idx as u32),
            )
        };
        let new_part = Load::per_transmission(stream, rates[new_min as usize]);
        Some(self.loads[li] - old_part + new_part)
    }
    fn load_if_left(&self, u: UserId) -> Option<Load> {
        let a = self.assoc[u.index()]?;
        let li = self.lidx(a).expect("an own user's AP is tracked");
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("associated user in range");
        let slot = self.slot(li, s);
        let base = slot * self.n_rates;
        let rates = self.inst.supported_rates();
        let min_idx = self.min_rate[slot] as usize;
        let old_part = Load::per_transmission(stream, rates[min_idx]);
        let u_idx = self.rate_idx(u_rate);
        let new_tx = if self.counts[base + u_idx] > 1 {
            Some(rates[min_idx]) // another member shares u's rate
        } else if u_idx == min_idx {
            self.counts[base + u_idx + 1..base + self.n_rates]
                .iter()
                .position(|&c| c > 0)
                .map(|off| rates[u_idx + 1 + off])
        } else {
            Some(rates[min_idx]) // a slower member pins the rate
        };
        let new_part = new_tx.map_or(Load::ZERO, |tx| Load::per_transmission(stream, tx));
        Some(self.loads[li] - old_part + new_part)
    }
}

/// The rank chain sequencing boundary users in `Serial` mode: a worker
/// about to decide the boundary user of global rank `r` blocks until
/// every earlier boundary user (of any tile) has decided, and reads their
/// moves from the shared log.
struct BoundaryChain {
    state: Mutex<ChainState>,
    cv: Condvar,
}

struct ChainState {
    /// The global boundary rank allowed to decide next.
    next_rank: usize,
    /// Boundary moves of the current round, tagged with the mover's tile.
    log: Vec<(u32, MoveRec)>,
}

impl BoundaryChain {
    fn new() -> BoundaryChain {
        BoundaryChain {
            state: Mutex::new(ChainState {
                next_rank: 0,
                log: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until `next_rank == rank`, returning the guard. Also the
    /// end-of-round barrier (`rank` = total boundary users).
    fn wait_for(&self, rank: usize) -> MutexGuard<'_, ChainState> {
        let mut st = self.state.lock().expect("chain never poisoned");
        while st.next_rank != rank {
            st = self.cv.wait(st).expect("chain never poisoned");
        }
        st
    }

    fn reset(&self) {
        let mut st = self.state.lock().expect("chain never poisoned");
        st.next_rank = 0;
        st.log.clear();
    }
}

/// Commands from the coordinator to a worker; replies carry the round's
/// own moves back. Channels queue, so workers need no explicit barrier
/// between an `Apply` and the next `Decide`.
enum Cmd {
    /// Simultaneous: decide all dirty own users against the frozen
    /// round-start ledger; reply with the moves, keep them pending.
    Decide { round: u32 },
    /// Simultaneous: apply the round's moves — own pending list plus the
    /// boundary-filtered lists of the other tiles — in ascending tile
    /// order.
    Apply { boundary: Arc<Vec<Vec<MoveRec>>> },
    /// Serial: run the round's wavefront (interior users free-running,
    /// boundary users sequenced on the chain); reply with the own moves.
    Serial { round: u32 },
    /// Shut down.
    Stop,
}

struct Reply {
    tile: usize,
    moves: Vec<MoveRec>,
}

/// One worker's state: its tile ledger, own users in processing order,
/// and the dirty-user worklist (only own users' bits are meaningful).
struct Shard<'a> {
    tile: u32,
    part: &'a Partition,
    ledger: TileLedger<'a>,
    /// Own users as `(pos, user)` in processing order: global decision
    /// order in `Serial` mode, ascending id in `Simultaneous` mode.
    own: Vec<(u32, UserId)>,
    dirty: Vec<bool>,
    scratch: DecisionScratch,
    config: &'a DistributedConfig,
    /// Simultaneous: the round's own moves, held for the apply phase.
    pending: Vec<MoveRec>,
}

impl<'a> Shard<'a> {
    fn new(
        inst: &'a Instance,
        part: &'a Partition,
        tile: u32,
        initial: &Association,
        own: Vec<(u32, UserId)>,
        config: &'a DistributedConfig,
    ) -> Shard<'a> {
        let ledger = TileLedger::new(inst, initial, &own);
        Shard {
            tile,
            part,
            ledger,
            own,
            dirty: vec![true; inst.n_users()],
            scratch: DecisionScratch::default(),
            config,
            pending: Vec::new(),
        }
    }

    fn decide(&mut self, u: UserId) -> Option<ApId> {
        local_decision_scratch(
            &self.ledger,
            u,
            self.config.policy,
            self.config.respect_budget,
            self.config.hysteresis,
            &mut self.scratch,
        )
    }

    /// Marks every own user whose view the move could have changed (the
    /// same rule as the single-threaded worklist; bits of other tiles'
    /// users are never read, so marking them too is harmless).
    fn mark_dirty(&mut self, rec: &MoveRec) {
        for &v in self.ledger.inst.reachable_users(rec.to) {
            self.dirty[v.index()] = true;
        }
        if let Some(f) = rec.from {
            for &v in self.ledger.inst.reachable_users(f) {
                self.dirty[v.index()] = true;
            }
        }
    }

    /// Simultaneous decide phase: all decisions read the frozen
    /// round-start ledger.
    fn decide_round(&mut self, round: u32) -> Vec<MoveRec> {
        self.pending.clear();
        let own = std::mem::take(&mut self.own);
        for &(pos, u) in &own {
            if !std::mem::replace(&mut self.dirty[u.index()], false) {
                continue;
            }
            if let Some(a) = self.decide(u) {
                self.pending.push(MoveRec {
                    round,
                    pos,
                    user: u,
                    from: self.ledger.ap_of(u),
                    to: a,
                });
            }
        }
        self.own = own;
        self.pending.clone()
    }

    /// Simultaneous apply phase: merge the round's moves in ascending
    /// tile order — own moves from the full pending list, other tiles'
    /// from their boundary-filtered lists.
    fn apply_round(&mut self, boundary: &[Vec<MoveRec>]) {
        for (t, list) in boundary.iter().enumerate() {
            if t == self.tile as usize {
                let pending = std::mem::take(&mut self.pending);
                for rec in &pending {
                    self.ledger.apply_own(rec);
                    self.mark_dirty(rec);
                }
            } else {
                for rec in list {
                    self.ledger.apply_remote(rec);
                    self.mark_dirty(rec);
                }
            }
        }
    }

    /// Serial wavefront: own users in global decision order; interior
    /// users run lock-free, boundary users synchronize on the chain.
    fn serial_round(
        &mut self,
        round: u32,
        chain: &BoundaryChain,
        n_boundary: usize,
        rank_of: &[u32],
    ) -> Vec<MoveRec> {
        let mut moves = Vec::new();
        let mut cursor = 0usize;
        let own = std::mem::take(&mut self.own);
        for &(pos, u) in &own {
            if self.part.is_boundary_user(u) {
                let mut st = chain.wait_for(rank_of[u.index()] as usize);
                self.drain_log(&st.log, &mut cursor);
                if std::mem::replace(&mut self.dirty[u.index()], false) {
                    if let Some(a) = self.decide(u) {
                        let rec = MoveRec {
                            round,
                            pos,
                            user: u,
                            from: self.ledger.ap_of(u),
                            to: a,
                        };
                        self.ledger.apply_own(&rec);
                        self.mark_dirty(&rec);
                        st.log.push((self.tile, rec));
                        moves.push(rec);
                    }
                }
                st.next_rank += 1;
                drop(st);
                chain.cv.notify_all();
            } else if std::mem::replace(&mut self.dirty[u.index()], false) {
                if let Some(a) = self.decide(u) {
                    let rec = MoveRec {
                        round,
                        pos,
                        user: u,
                        from: self.ledger.ap_of(u),
                        to: a,
                    };
                    self.ledger.apply_own(&rec);
                    self.mark_dirty(&rec);
                    moves.push(rec);
                }
            }
        }
        self.own = own;
        // End-of-round barrier: wait for every boundary user of every
        // tile, then absorb the remaining boundary moves.
        let st = chain.wait_for(n_boundary);
        self.drain_log(&st.log, &mut cursor);
        moves
    }

    /// Applies the not-yet-seen suffix of the boundary log (skipping own
    /// moves, which were applied when they were made).
    fn drain_log(&mut self, log: &[(u32, MoveRec)], cursor: &mut usize) {
        while *cursor < log.len() {
            let (t, rec) = log[*cursor];
            *cursor += 1;
            if t != self.tile {
                self.ledger.apply_remote(&rec);
                self.mark_dirty(&rec);
            }
        }
    }
}

/// Runs a distributed algorithm on `part.n_tiles()` worker threads,
/// bit-for-bit equivalent to
/// [`run_distributed`](crate::distributed::run_distributed) — identical
/// association, rounds, moves, convergence and cycle flags, and decision
/// sequence — for every partition and thread schedule (see the
/// [module docs](self) for the argument).
///
/// # Panics
///
/// Panics if `part` does not fit `inst`, or if `initial` has the wrong
/// size or associates a user with an AP out of its range (as
/// `run_distributed` does).
pub fn run_distributed_partitioned(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    part: &Partition,
) -> DistributedOutcome {
    run_partitioned_impl(inst, config, initial, part, false).0
}

/// [`run_distributed_partitioned`] plus the decision trace, sorted by
/// `(round, pos)` — byte-identical to the trace of
/// [`run_distributed_traced`](crate::distributed::run_distributed_traced).
pub fn run_distributed_partitioned_traced(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    part: &Partition,
) -> (DistributedOutcome, Vec<MoveRec>) {
    run_partitioned_impl(inst, config, initial, part, true)
}

fn run_partitioned_impl(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    part: &Partition,
    collect_trace: bool,
) -> (DistributedOutcome, Vec<MoveRec>) {
    assert_eq!(part.ap_tile.len(), inst.n_aps(), "partition AP count");
    assert_eq!(part.user_tile.len(), inst.n_users(), "partition user count");
    assert_eq!(initial.as_slice().len(), inst.n_users(), "association size");
    // The tile ledgers silently skip untracked APs, so the structural
    // validation the single-threaded ledger performs on construction is
    // reproduced here explicitly.
    for (i, &ap) in initial.as_slice().iter().enumerate() {
        if let Some(a) = ap {
            assert!(
                inst.multicast_rate_to(a, UserId(i as u32)).is_some(),
                "user u{i} out of range of AP {a}"
            );
        }
    }

    let w = part.n_tiles;
    let order = config.order.order(inst.n_users());

    // Per-user position in the round's decision sequence, and the global
    // rank chain over boundary users (Serial mode).
    let mut pos_of = vec![0u32; inst.n_users()];
    for (pos, &u) in order.iter().enumerate() {
        pos_of[u.index()] = pos as u32;
    }
    let mut boundary_ranked: Vec<UserId> = inst
        .users()
        .filter(|&u| part.boundary_user[u.index()])
        .collect();
    boundary_ranked.sort_unstable_by_key(|u| pos_of[u.index()]);
    let mut rank_of = vec![u32::MAX; inst.n_users()];
    for (k, &u) in boundary_ranked.iter().enumerate() {
        rank_of[u.index()] = k as u32;
    }
    let n_boundary = boundary_ranked.len();

    // Own users per tile, in the mode's processing order.
    let mut own_lists: Vec<Vec<(u32, UserId)>> = vec![Vec::new(); w];
    match config.mode {
        ExecutionMode::Serial => {
            for (pos, &u) in order.iter().enumerate() {
                own_lists[part.user_tile[u.index()] as usize].push((pos as u32, u));
            }
        }
        ExecutionMode::Simultaneous => {
            for u in inst.users() {
                own_lists[part.user_tile[u.index()] as usize].push((u.0, u));
            }
        }
    }

    let chain = BoundaryChain::new();
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let mut cmd_txs: Vec<mpsc::Sender<Cmd>> = Vec::with_capacity(w);
    let mut cmd_rxs: Vec<mpsc::Receiver<Cmd>> = Vec::with_capacity(w);
    for _ in 0..w {
        let (tx, rx) = mpsc::channel::<Cmd>();
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
    }

    let mut global: Vec<Option<ApId>> = initial.as_slice().to_vec();
    let mut trace: Vec<MoveRec> = Vec::new();
    let initial_ref = &initial;
    let chain_ref = &chain;
    let rank_of_ref = &rank_of;

    let outcome = std::thread::scope(|scope| {
        for (tile, (rx, own)) in cmd_rxs.into_iter().zip(own_lists).enumerate() {
            let reply_tx = reply_tx.clone();
            scope.spawn(move || {
                let mut shard = Shard::new(inst, part, tile as u32, initial_ref, own, config);
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Decide { round } => {
                            let moves = shard.decide_round(round);
                            let _ = reply_tx.send(Reply { tile, moves });
                        }
                        Cmd::Apply { boundary } => shard.apply_round(&boundary),
                        Cmd::Serial { round } => {
                            let moves =
                                shard.serial_round(round, chain_ref, n_boundary, rank_of_ref);
                            let _ = reply_tx.send(Reply { tile, moves });
                        }
                        Cmd::Stop => break,
                    }
                }
            });
        }

        let mut moves_total = 0usize;
        let mut seen: HashSet<Vec<Option<ApId>>> = HashSet::new();
        seen.insert(global.clone());
        let mut result: Option<DistributedOutcome> = None;

        for round in 1..=config.max_rounds {
            let mut per_tile: Vec<Vec<MoveRec>> = vec![Vec::new(); w];
            match config.mode {
                ExecutionMode::Simultaneous => {
                    for tx in &cmd_txs {
                        tx.send(Cmd::Decide {
                            round: round as u32,
                        })
                        .expect("worker alive");
                    }
                    for _ in 0..w {
                        let reply = reply_rx.recv().expect("worker alive");
                        per_tile[reply.tile] = reply.moves;
                    }
                    // Halo exchange: ship each tile's boundary-AP moves;
                    // interior moves are invisible outside their tile and
                    // each worker already holds its own full list.
                    let shipped: Arc<Vec<Vec<MoveRec>>> = Arc::new(
                        per_tile
                            .iter()
                            .map(|list| {
                                list.iter()
                                    .copied()
                                    .filter(|r| {
                                        part.boundary_ap[r.to.index()]
                                            || r.from.is_some_and(|f| part.boundary_ap[f.index()])
                                    })
                                    .collect()
                            })
                            .collect(),
                    );
                    for tx in &cmd_txs {
                        tx.send(Cmd::Apply {
                            boundary: Arc::clone(&shipped),
                        })
                        .expect("worker alive");
                    }
                }
                ExecutionMode::Serial => {
                    chain.reset();
                    for tx in &cmd_txs {
                        tx.send(Cmd::Serial {
                            round: round as u32,
                        })
                        .expect("worker alive");
                    }
                    for _ in 0..w {
                        let reply = reply_rx.recv().expect("worker alive");
                        per_tile[reply.tile] = reply.moves;
                    }
                }
            }

            // Merge in fixed tile-index order (order-free for the global
            // association — each user moves at most once per round — but
            // fixed anyway so every observable is schedule-independent).
            let mut changed = false;
            for list in &per_tile {
                for rec in list {
                    global[rec.user.index()] = Some(rec.to);
                    moves_total += 1;
                    changed = true;
                }
                if collect_trace {
                    trace.extend_from_slice(list);
                }
            }

            if !changed {
                result = Some(DistributedOutcome {
                    association: Association::from_vec(global.clone()),
                    rounds: round,
                    moves: moves_total,
                    converged: true,
                    cycle_detected: false,
                });
                break;
            }
            if !seen.insert(global.clone()) {
                result = Some(DistributedOutcome {
                    association: Association::from_vec(global.clone()),
                    rounds: round,
                    moves: moves_total,
                    converged: false,
                    cycle_detected: true,
                });
                break;
            }
        }

        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Stop);
        }
        result.unwrap_or_else(|| DistributedOutcome {
            association: Association::from_vec(global.clone()),
            rounds: config.max_rounds,
            moves: moves_total,
            converged: false,
            cycle_detected: false,
        })
    });

    trace.sort_unstable_by_key(|r| (r.round, r.pos));
    (outcome, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::{run_distributed, run_distributed_traced, DecisionOrder, Policy};
    use crate::examples_paper::{figure1_instance, figure4_instance, figure4_start};
    use crate::instance::InstanceBuilder;

    fn outcomes_match(a: &DistributedOutcome, b: &DistributedOutcome) {
        assert_eq!(a.association.as_slice(), b.association.as_slice());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.cycle_detected, b.cycle_detected);
    }

    /// A 3×3 AP grid split into 2×2 quadrant tiles, with one user per
    /// interesting spot. Links model unit-disk reachability of the
    /// conceptual layout:
    ///
    /// ```text
    ///   a0 a1 a2      tiles:  0 0 1
    ///   a3 a4 a5              0 0 1
    ///   a6 a7 a8              2 2 3
    /// ```
    fn quadrant_fixture() -> (Instance, Partition) {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let aps: Vec<ApId> = (0..9).map(|_| b.add_ap(Load::ONE)).collect();
        // One user "at" each AP, reaching the APs adjacent to it
        // (4-neighborhood) — u_i sits at a_i.
        let adj: [&[usize]; 9] = [
            &[0, 1, 3],
            &[1, 0, 2, 4],
            &[2, 1, 5],
            &[3, 0, 4, 6],
            &[4, 1, 3, 5, 7],
            &[5, 2, 4, 8],
            &[6, 3, 7],
            &[7, 4, 6, 8],
            &[8, 5, 7],
        ];
        for reach in adj {
            let u = b.add_user(s);
            for &ai in reach {
                b.link(aps[ai], u, Kbps::from_mbps(6)).unwrap();
            }
        }
        let inst = b.build().unwrap();
        let ap_tile = vec![0, 0, 1, 0, 0, 1, 2, 2, 3];
        let user_tile = ap_tile.clone();
        let part = Partition::new(&inst, 4, ap_tile, user_tile).unwrap();
        (inst, part)
    }

    /// Boundary classification at tile edges and corners: the corner AP
    /// of a quadrant that only inner users reach is interior; every AP on
    /// a tile edge reached from across it is boundary.
    #[test]
    fn quadrant_boundary_classification() {
        let (_inst, part) = quadrant_fixture();
        // a0 is the outer corner of tile 0: reached by u0, u1, u3 — all
        // tile 0 — so interior.
        assert!(!part.is_boundary_ap(ApId(0)));
        // a1 sits on the edge between tiles 0 and 1: u2 (tile 1) reaches
        // it — boundary. Symmetrically a3 (edge to tile 2).
        assert!(part.is_boundary_ap(ApId(1)));
        assert!(part.is_boundary_ap(ApId(3)));
        // a4 is the inner corner where all four tiles meet: u5 (tile 1)
        // and u7 (tile 2) reach it — boundary.
        assert!(part.is_boundary_ap(ApId(4)));
        // a2, the outer corner of tile 1, is reached by u1 (tile 0)
        // across the edge — boundary.
        assert!(part.is_boundary_ap(ApId(2)));
        // a8, the outer corner of tile 3, is reached only by u5 (tile 1)
        // and u7 (tile 2)? No: u5 reaches a8 and is tile 1 — boundary.
        assert!(part.is_boundary_ap(ApId(8)));
        // Users: u0 only reaches interior a0 and boundary a1/a3 — it has
        // boundary candidates, so it is a boundary user.
        assert!(part.is_boundary_user(UserId(0)));
        assert_eq!(part.n_tiles(), 4);
        assert_eq!(part.ap_tile(ApId(4)), 0);
        assert_eq!(part.user_tile(UserId(8)), 3);
    }

    /// An interior AP's users may still be interior: a two-tile line
    /// where each tile has a private AP + user.
    #[test]
    fn disjoint_tiles_have_no_boundary() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let a0 = b.add_ap(Load::ONE);
        let a1 = b.add_ap(Load::ONE);
        let u0 = b.add_user(s);
        let u1 = b.add_user(s);
        b.link(a0, u0, Kbps::from_mbps(6)).unwrap();
        b.link(a1, u1, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let part = Partition::new(&inst, 2, vec![0, 1], vec![0, 1]).unwrap();
        assert_eq!(part.boundary_ap_count(), 0);
        assert_eq!(part.boundary_user_count(), 0);
    }

    #[test]
    fn partition_validation_errors() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        assert_eq!(
            Partition::new(&inst, 0, vec![0, 0], vec![0; 5]).unwrap_err(),
            PartitionError::NoTiles
        );
        assert_eq!(
            Partition::new(&inst, 2, vec![0], vec![0; 5]).unwrap_err(),
            PartitionError::WrongSize
        );
        assert_eq!(
            Partition::new(&inst, 2, vec![0, 2], vec![0; 5]).unwrap_err(),
            PartitionError::TileOutOfRange
        );
        assert!(PartitionError::NoTiles.to_string().contains("tile"));
    }

    /// The quadrant fixture, every mode × policy × worker count: the
    /// partitioned engine reproduces the single-threaded outcome and
    /// decision trace exactly.
    #[test]
    fn quadrant_equivalence_all_modes() {
        let (inst, part) = quadrant_fixture();
        for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
            for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
                let config = DistributedConfig {
                    policy,
                    mode,
                    max_rounds: 30,
                    order: DecisionOrder::Shuffled(7),
                    ..DistributedConfig::default()
                };
                let (single, strace) =
                    run_distributed_traced(&inst, &config, Association::empty(inst.n_users()));
                let (par, ptrace) = run_distributed_partitioned_traced(
                    &inst,
                    &config,
                    Association::empty(inst.n_users()),
                    &part,
                );
                outcomes_match(&par, &single);
                assert_eq!(ptrace, strace);
            }
        }
    }

    /// Figure 4's simultaneous oscillation is detected identically by the
    /// partitioned engine (same round, same cycle flag).
    #[test]
    fn figure4_partitioned_detects_oscillation() {
        let inst = figure4_instance();
        for w in [1, 2] {
            let part = Partition::contiguous(&inst, w).unwrap();
            let config = DistributedConfig {
                mode: ExecutionMode::Simultaneous,
                ..DistributedConfig::default()
            };
            let single = run_distributed(&inst, &config, figure4_start());
            let par = run_distributed_partitioned(&inst, &config, figure4_start(), &part);
            assert!(par.cycle_detected);
            outcomes_match(&par, &single);
        }
    }

    /// `max_rounds = 0` returns the validated initial state, like the
    /// single-threaded engine.
    #[test]
    fn zero_rounds_is_identity() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let config = DistributedConfig {
            max_rounds: 0,
            ..DistributedConfig::default()
        };
        let part = Partition::contiguous(&inst, 2).unwrap();
        let out =
            run_distributed_partitioned(&inst, &config, Association::empty(inst.n_users()), &part);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.moves, 0);
        assert!(!out.converged);
    }

    /// Out-of-range initial associations panic, as in `run_distributed`.
    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_initial_panics() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let part = Partition::single(&inst);
        // u1 (paper's u2... index 0) cannot reach a2 (ApId(1))? u0 can
        // only reach ApId(0) — associating it with ApId(1) is invalid.
        let bad = Association::from_vec(vec![Some(ApId(1)), None, None, None, None]);
        let _ = run_distributed_partitioned(&inst, &DistributedConfig::default(), bad, &part);
    }

    /// More tiles than users/APs still works (some shards are empty).
    #[test]
    fn more_tiles_than_aps() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let part = Partition::contiguous(&inst, 8).unwrap();
        let config = DistributedConfig::default();
        let single = run_distributed(&inst, &config, Association::empty(inst.n_users()));
        let par =
            run_distributed_partitioned(&inst, &config, Association::empty(inst.n_users()), &part);
        outcomes_match(&par, &single);
    }
}
