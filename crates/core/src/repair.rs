//! Incremental repair: greedy re-homing of individual users against a
//! live [`LoadLedger`].
//!
//! The one-shot solvers ([`solve_mnu`](crate::solve_mnu) and friends)
//! rebuild the whole association from scratch. When a fault orphans a
//! handful of users — an AP crashed, a user moved — re-solving everything
//! is both expensive and disruptive (the greedy covering solvers may
//! rearrange users that were never affected). The entry points here
//! instead place *one user at a time* against the current ledger state,
//! leaving every other association untouched. They are the second rung
//! of the online controller's degradation ladder and the building block
//! of its admission sweep.
//!
//! Each call is `O(k)` in the user's candidate-AP count (`load_if_joined`
//! is `O(1)` per candidate thanks to the ledger's count arrays), versus
//! `Ω(Σᵤ kᵤ · |R|)` for a full re-solve.

use crate::assoc::LoadLedger;
use crate::ids::{ApId, UserId};
use crate::instance::Instance;
use crate::load::Load;
use crate::solution::Objective;

/// The best AP to re-home unassociated user `u` onto, given the current
/// ledger loads — or `None` if no allowed candidate can take it.
///
/// `allowed` masks candidates out (down APs, links lost to mobility).
/// When `enforce_budget` is set, an AP whose post-join load would exceed
/// its multicast budget is not a valid target (MNU's admission rule);
/// BLA/MLA treat budgets as soft and pass `false`.
///
/// The ranking is objective-aware, mirroring what a full re-solve
/// optimizes locally:
///
/// * [`Objective::Mnu`] / [`Objective::Bla`] — smallest post-join load
///   (keeps the bottleneck AP as light as possible; this is the same
///   rule as MNU's leftover-admission sweep).
/// * [`Objective::Mla`] — smallest load *increase* (a user whose rate is
///   already being multicast joins for free), then smallest post-join
///   load.
///
/// Ties break toward the lower [`ApId`], so repair is deterministic.
pub fn best_rehome_target<F>(
    ledger: &LoadLedger<'_>,
    u: UserId,
    objective: Objective,
    enforce_budget: bool,
    allowed: F,
) -> Option<ApId>
where
    F: Fn(ApId) -> bool,
{
    let inst = ledger.instance();
    let mut best: Option<(Load, Load, ApId)> = None;
    for &(a, _) in inst.candidate_aps(u) {
        if !allowed(a) {
            continue;
        }
        let Some(post) = ledger.load_if_joined(u, a) else {
            continue;
        };
        if enforce_budget && post > inst.budget(a) {
            continue;
        }
        let delta = post - ledger.ap_load(a);
        let key = match objective {
            Objective::Mnu | Objective::Bla => (post, Load::ZERO, a),
            Objective::Mla => (delta, post, a),
        };
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, a)| a)
}

/// Picks the [`best_rehome_target`] for `u` and joins it to the ledger.
///
/// Returns the AP the user was placed on, or `None` (ledger untouched)
/// if no allowed candidate can take it. `u` must currently be
/// unassociated — orphaned by an eviction, newly arrived, or explicitly
/// [`LoadLedger::leave`]-d by the caller first.
pub fn repair_user<F>(
    ledger: &mut LoadLedger<'_>,
    u: UserId,
    objective: Objective,
    enforce_budget: bool,
    allowed: F,
) -> Option<ApId>
where
    F: Fn(ApId) -> bool,
{
    debug_assert!(ledger.ap_of(u).is_none(), "repair target must be orphaned");
    let a = best_rehome_target(ledger, u, objective, enforce_budget, &allowed)?;
    ledger.join(u, a);
    Some(a)
}

/// The strongest-signal AP of `u` among allowed candidates — the SSA
/// baseline rule ([`crate::ssa::strongest_ap`]) restricted to a mask.
///
/// Used by the controller's SSA fallback rung, where down APs and
/// mobility-lost links must be skipped. Ties break toward the lower
/// [`ApId`], like the unmasked baseline.
pub fn strongest_allowed_ap<F>(inst: &Instance, u: UserId, allowed: F) -> Option<ApId>
where
    F: Fn(ApId) -> bool,
{
    inst.candidate_aps(u)
        .iter()
        .filter(|&&(a, _)| allowed(a))
        .map(|&(a, _)| {
            let sig = inst.signal(a, u).expect("candidate implies link");
            (sig, std::cmp::Reverse(a))
        })
        .max()
        .map(|(_, std::cmp::Reverse(a))| a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance, u};
    use crate::instance::InstanceBuilder;
    use crate::load::Load;
    use crate::rate::Kbps;

    #[test]
    fn rehome_prefers_least_loaded_ap() {
        // Figure 1 at 1 Mbps: u5 can go to a1 (rate 4) or a2 (rate 3).
        // With u3, u4 already on a2, joining a2 would slow its s2 stream
        // to 3 Mbps (load 1/5 + 1/3 = 8/15); empty a1 costs only 1/4.
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(u(3), a(2));
        ledger.join(u(4), a(2));
        let placed = repair_user(&mut ledger, u(5), Objective::Mnu, true, |_| true);
        assert_eq!(placed, Some(a(1)));
        assert_eq!(ledger.ap_load(a(1)), Load::from_ratio(1, 4));
    }

    #[test]
    fn mla_rehome_joins_existing_multicast_for_free() {
        // u4 is already streaming session 1 from a2 at rate 2; placing u5
        // there adds nothing to the total load, so MLA repair prefers a2
        // even though a1's post-join load would be smaller.
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(u(4), a(2));
        let t = best_rehome_target(&ledger, u(5), Objective::Mla, true, |_| true);
        assert_eq!(t, Some(a(2)));
        // The load-minimizing objectives pick the lighter AP instead.
        let t = best_rehome_target(&ledger, u(5), Objective::Bla, true, |_| true);
        assert_eq!(t, Some(a(1)));
    }

    #[test]
    fn budget_enforcement_blocks_and_soft_mode_allows() {
        // At 3 Mbps, u1 on a1 fills its unit budget; u2 (only candidate
        // a1) cannot be admitted under MNU rules but can under soft ones.
        let inst = figure1_instance(Kbps::from_mbps(3));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(u(1), a(1));
        assert_eq!(
            best_rehome_target(&ledger, u(2), Objective::Mnu, true, |_| true),
            None
        );
        assert_eq!(
            best_rehome_target(&ledger, u(2), Objective::Bla, false, |_| true),
            Some(a(1))
        );
    }

    #[test]
    fn allowed_mask_excludes_aps() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        // u5 reaches a1 and a2; with a1 masked (down), repair lands on a2.
        let placed = repair_user(&mut ledger, u(5), Objective::Mnu, true, |ap| ap != a(1));
        assert_eq!(placed, Some(a(2)));
        // With both masked there is no target and the ledger is untouched.
        assert_eq!(
            best_rehome_target(&ledger, u(1), Objective::Mnu, true, |_| false),
            None
        );
        assert_eq!(ledger.ap_of(u(1)), None);
    }

    #[test]
    fn strongest_allowed_matches_ssa_when_unmasked() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        for user in inst.users() {
            assert_eq!(
                strongest_allowed_ap(&inst, user, |_| true),
                crate::ssa::strongest_ap(&inst, user),
            );
        }
        // Masking the strongest candidate falls back to the next one.
        let s = crate::ssa::strongest_ap(&inst, u(5)).unwrap();
        let second = strongest_allowed_ap(&inst, u(5), |ap| ap != s);
        assert!(second.is_some());
        assert_ne!(second, Some(s));
    }

    #[test]
    fn ties_break_to_lower_ap_id() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let us = b.add_user(s);
        b.link(a1, us, Kbps::from_mbps(6)).unwrap();
        b.link(a2, us, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let ledger = LoadLedger::fresh(&inst);
        for obj in [Objective::Mnu, Objective::Bla, Objective::Mla] {
            assert_eq!(
                best_rehome_target(&ledger, us, obj, true, |_| true),
                Some(a1)
            );
        }
    }
}
