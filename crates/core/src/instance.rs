//! The WLAN problem instance: APs, users, sessions, link rates, budgets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ApId, SessionId, UserId};
use crate::load::Load;
use crate::rate::{Kbps, RatePolicy, RateTable};

/// Received signal strength of a link, in an abstract monotone unit —
/// larger is stronger. The SSA baseline associates each user with the AP of
/// strongest signal. Topology generators set this to the negated distance
/// (in millimeters); hand-built instances default it to the link rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignalStrength(pub i64);

/// A multicast session (stream) offered by the WLAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Stream bit-rate.
    pub rate: Kbps,
}

/// A user and the single session it requests (§3.1: one stream per user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserSpec {
    /// The requested multicast session.
    pub session: SessionId,
}

/// Errors detected while building an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A link or budget referenced an AP that was never added.
    UnknownAp(ApId),
    /// A link referenced a user that was never added.
    UnknownUser(UserId),
    /// A user referenced a session that was never added.
    UnknownSession(SessionId),
    /// A link rate is not one of the supported discrete rates.
    UnsupportedLinkRate {
        /// The AP side of the link.
        ap: ApId,
        /// The user side of the link.
        user: UserId,
        /// The offending rate.
        rate: Kbps,
    },
    /// A session has a zero stream rate.
    ZeroSessionRate(SessionId),
    /// The supported-rate list is empty.
    NoSupportedRates,
    /// A budget is negative.
    NegativeBudget(ApId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UnknownAp(a) => write!(f, "unknown AP {a}"),
            InstanceError::UnknownUser(u) => write!(f, "unknown user {u}"),
            InstanceError::UnknownSession(s) => write!(f, "unknown session {s}"),
            InstanceError::UnsupportedLinkRate { ap, user, rate } => {
                write!(
                    f,
                    "link {ap}–{user} rate {rate} not in the supported rate set"
                )
            }
            InstanceError::ZeroSessionRate(s) => {
                write!(f, "session {s} has zero stream rate")
            }
            InstanceError::NoSupportedRates => write!(f, "no supported rates given"),
            InstanceError::NegativeBudget(a) => write!(f, "AP {a} has a negative budget"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// Builder for [`Instance`].
///
/// # Example
///
/// ```
/// use mcast_core::{InstanceBuilder, Kbps, Load};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = InstanceBuilder::new();
/// b.supported_rates([Kbps::from_mbps(3), Kbps::from_mbps(6)]);
/// let s = b.add_session(Kbps::from_mbps(3));
/// let a = b.add_ap(Load::ONE);
/// let u = b.add_user(s);
/// b.link(a, u, Kbps::from_mbps(6))?;
/// let instance = b.build()?;
/// assert_eq!(instance.n_users(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    sessions: Vec<SessionSpec>,
    users: Vec<UserSpec>,
    budgets: Vec<Load>,
    links: Vec<(ApId, UserId, Kbps, Option<SignalStrength>)>,
    supported_rates: Vec<Kbps>,
    rate_policy: RatePolicy,
}

impl Default for InstanceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceBuilder {
    /// Starts an empty builder with the Table 1 (802.11a) supported rates
    /// and the [`RatePolicy::MultiRate`] policy.
    pub fn new() -> Self {
        InstanceBuilder {
            sessions: Vec::new(),
            users: Vec::new(),
            budgets: Vec::new(),
            links: Vec::new(),
            supported_rates: RateTable::ieee80211a().rates().collect(),
            rate_policy: RatePolicy::MultiRate,
        }
    }

    /// Replaces the discrete set of rates the WLAN supports.
    pub fn supported_rates<I: IntoIterator<Item = Kbps>>(&mut self, rates: I) -> &mut Self {
        self.supported_rates = rates.into_iter().collect();
        self
    }

    /// Sets the multicast rate policy (multi-rate vs basic-rate-only).
    pub fn rate_policy(&mut self, policy: RatePolicy) -> &mut Self {
        self.rate_policy = policy;
        self
    }

    /// Adds a session with the given stream rate.
    pub fn add_session(&mut self, rate: Kbps) -> SessionId {
        let id = SessionId(self.sessions.len() as u32);
        self.sessions.push(SessionSpec { rate });
        id
    }

    /// Adds an AP with the given multicast load budget.
    pub fn add_ap(&mut self, budget: Load) -> ApId {
        let id = ApId(self.budgets.len() as u32);
        self.budgets.push(budget);
        id
    }

    /// Adds a user requesting `session`.
    pub fn add_user(&mut self, session: SessionId) -> UserId {
        let id = UserId(self.users.len() as u32);
        self.users.push(UserSpec { session });
        id
    }

    /// Declares a link with the given maximum data rate; signal strength
    /// defaults to the rate in kbps (higher rate ⇒ stronger signal).
    ///
    /// # Errors
    ///
    /// [`InstanceError::UnknownAp`] / [`InstanceError::UnknownUser`] if the
    /// endpoints were not added first.
    pub fn link(&mut self, ap: ApId, user: UserId, rate: Kbps) -> Result<&mut Self, InstanceError> {
        self.link_with_signal(ap, user, rate, SignalStrength(i64::from(rate.0)))
    }

    /// Declares a link with an explicit signal strength.
    ///
    /// # Errors
    ///
    /// [`InstanceError::UnknownAp`] / [`InstanceError::UnknownUser`] if the
    /// endpoints were not added first.
    pub fn link_with_signal(
        &mut self,
        ap: ApId,
        user: UserId,
        rate: Kbps,
        signal: SignalStrength,
    ) -> Result<&mut Self, InstanceError> {
        if ap.index() >= self.budgets.len() {
            return Err(InstanceError::UnknownAp(ap));
        }
        if user.index() >= self.users.len() {
            return Err(InstanceError::UnknownUser(user));
        }
        self.links.push((ap, user, rate, Some(signal)));
        Ok(self)
    }

    /// Finalizes and validates the instance.
    ///
    /// # Errors
    ///
    /// See [`InstanceError`]. Duplicate links keep the last declaration.
    pub fn build(self) -> Result<Instance, InstanceError> {
        let n_aps = self.budgets.len();
        let n_users = self.users.len();
        let n_sessions = self.sessions.len();

        let mut rates = self.supported_rates;
        if rates.is_empty() {
            return Err(InstanceError::NoSupportedRates);
        }
        rates.sort_unstable();
        rates.dedup();

        for (s, spec) in self.sessions.iter().enumerate() {
            if spec.rate.0 == 0 {
                return Err(InstanceError::ZeroSessionRate(SessionId(s as u32)));
            }
        }
        for (a, b) in self.budgets.iter().enumerate() {
            if b.is_negative() {
                return Err(InstanceError::NegativeBudget(ApId(a as u32)));
            }
        }
        for user in &self.users {
            if user.session.index() >= n_sessions {
                return Err(InstanceError::UnknownSession(user.session));
            }
        }

        let mut user_deg = vec![0u32; n_users];
        let mut ap_deg = vec![0u32; n_aps];
        for &(ap, user, rate, _) in &self.links {
            if rates.binary_search(&rate).is_err() {
                return Err(InstanceError::UnsupportedLinkRate { ap, user, rate });
            }
            user_deg[user.index()] += 1;
            ap_deg[ap.index()] += 1;
        }

        // Sparse adjacency straight from the link list — O(L log L), never
        // O(APs × users). Stable (ap, user, declaration-index) order means
        // ascending ApId per user, ascending UserId per AP, and "last
        // declaration wins" for duplicates, exactly as the former dense
        // matrix produced.
        type IndexedLink = (usize, (ApId, UserId, Kbps, Option<SignalStrength>));
        let mut indexed: Vec<IndexedLink> = self.links.into_iter().enumerate().collect();
        indexed.sort_unstable_by_key(|&(i, (a, u, _, _))| (a, u, i));
        // Degrees count duplicate declarations too — a harmless capacity
        // overestimate that keeps the fill loop reallocation-free.
        let mut user_aps: Vec<Vec<(ApId, Kbps)>> = user_deg
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        let mut user_signals: Vec<Vec<Option<SignalStrength>>> = user_deg
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        let mut ap_users: Vec<Vec<UserId>> = ap_deg
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        let mut it = indexed.into_iter().peekable();
        while let Some((_, (a, u, r, s))) = it.next() {
            if matches!(it.peek(), Some(&(_, (a2, u2, _, _))) if a2 == a && u2 == u) {
                continue; // a later declaration of the same link supersedes this one
            }
            user_aps[u.index()].push((a, r));
            user_signals[u.index()].push(s);
            ap_users[a.index()].push(u);
        }

        Ok(Instance {
            sessions: self.sessions,
            users: self.users,
            budgets: self.budgets,
            user_aps,
            user_signals,
            ap_users,
            rates,
            rate_policy: self.rate_policy,
        })
    }
}

/// An immutable, validated WLAN multicast-association instance.
///
/// All three problems (MNU, BLA, MLA), the distributed algorithms, and the
/// SSA baseline operate on this type.
///
/// Storage is sparse: per-user and per-AP adjacency lists, sized by the
/// number of actual links rather than APs × users. Construction is
/// O(L log L); [`Instance::link_rate`] and [`Instance::signal`] are
/// O(log degree). The serialized form is unchanged — see [`DenseInstance`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "DenseInstance", into = "DenseInstance")]
pub struct Instance {
    sessions: Vec<SessionSpec>,
    users: Vec<UserSpec>,
    budgets: Vec<Load>,
    user_aps: Vec<Vec<(ApId, Kbps)>>,
    user_signals: Vec<Vec<Option<SignalStrength>>>,
    ap_users: Vec<Vec<UserId>>,
    rates: Vec<Kbps>,
    rate_policy: RatePolicy,
}

/// The wire format of [`Instance`]: the dense link/signal matrices of the
/// original matrix-backed representation. Keeping it as the (de)serialized
/// shape means scenario files written before the sparse refactor load
/// unchanged, and new files stay byte-identical to old ones.
#[derive(Clone, Serialize, Deserialize)]
struct DenseInstance {
    sessions: Vec<SessionSpec>,
    users: Vec<UserSpec>,
    budgets: Vec<Load>,
    link: Vec<Option<Kbps>>,
    signal: Vec<Option<SignalStrength>>,
    user_aps: Vec<Vec<(ApId, Kbps)>>,
    ap_users: Vec<Vec<UserId>>,
    rates: Vec<Kbps>,
    rate_policy: RatePolicy,
}

impl From<Instance> for DenseInstance {
    fn from(inst: Instance) -> DenseInstance {
        let n_aps = inst.n_aps();
        let n_users = inst.n_users();
        let mut link = vec![None; n_aps * n_users];
        let mut signal = vec![None; n_aps * n_users];
        for (u, aps) in inst.user_aps.iter().enumerate() {
            for (i, &(a, r)) in aps.iter().enumerate() {
                let idx = a.index() * n_users + u;
                link[idx] = Some(r);
                signal[idx] = inst.user_signals[u][i];
            }
        }
        DenseInstance {
            sessions: inst.sessions,
            users: inst.users,
            budgets: inst.budgets,
            link,
            signal,
            user_aps: inst.user_aps,
            ap_users: inst.ap_users,
            rates: inst.rates,
            rate_policy: inst.rate_policy,
        }
    }
}

impl TryFrom<DenseInstance> for Instance {
    type Error = String;

    fn try_from(w: DenseInstance) -> Result<Instance, String> {
        let n_aps = w.budgets.len();
        let n_users = w.users.len();
        if w.link.len() != n_aps * n_users || w.signal.len() != n_aps * n_users {
            return Err(format!(
                "instance matrices sized {}/{} for {n_aps} APs x {n_users} users",
                w.link.len(),
                w.signal.len()
            ));
        }
        // The dense matrices are authoritative; adjacency is rebuilt from
        // them (in the same AP-major scan order that built the wire lists).
        let mut user_aps: Vec<Vec<(ApId, Kbps)>> = vec![Vec::new(); n_users];
        let mut user_signals: Vec<Vec<Option<SignalStrength>>> = vec![Vec::new(); n_users];
        let mut ap_users: Vec<Vec<UserId>> = vec![Vec::new(); n_aps];
        for (a, users_of_a) in ap_users.iter_mut().enumerate() {
            for u in 0..n_users {
                if let Some(r) = w.link[a * n_users + u] {
                    user_aps[u].push((ApId(a as u32), r));
                    user_signals[u].push(w.signal[a * n_users + u]);
                    users_of_a.push(UserId(u as u32));
                }
            }
        }
        Ok(Instance {
            sessions: w.sessions,
            users: w.users,
            budgets: w.budgets,
            user_aps,
            user_signals,
            ap_users,
            rates: w.rates,
            rate_policy: w.rate_policy,
        })
    }
}

impl Instance {
    /// Number of access points.
    pub fn n_aps(&self) -> usize {
        self.budgets.len()
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Iterator over all AP ids.
    pub fn aps(&self) -> impl Iterator<Item = ApId> {
        (0..self.n_aps() as u32).map(ApId)
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.n_users() as u32).map(UserId)
    }

    /// Iterator over all session ids.
    pub fn sessions(&self) -> impl Iterator<Item = SessionId> {
        (0..self.n_sessions() as u32).map(SessionId)
    }

    /// The stream rate of session `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn session_rate(&self, s: SessionId) -> Kbps {
        self.sessions[s.index()].rate
    }

    /// The session user `u` requests.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn user_session(&self, u: UserId) -> SessionId {
        self.users[u.index()].session
    }

    /// The multicast load budget of AP `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn budget(&self, a: ApId) -> Load {
        self.budgets[a.index()]
    }

    /// The maximum data rate of the `a`–`u` link, or `None` if out of range.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `u` is out of range.
    pub fn link_rate(&self, a: ApId, u: UserId) -> Option<Kbps> {
        assert!(a.index() < self.n_aps(), "AP {a} out of range");
        let aps = &self.user_aps[u.index()];
        aps.binary_search_by_key(&a, |&(ap, _)| ap)
            .ok()
            .map(|i| aps[i].1)
    }

    /// The signal strength of the `a`–`u` link, or `None` if out of range.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `u` is out of range.
    pub fn signal(&self, a: ApId, u: UserId) -> Option<SignalStrength> {
        assert!(a.index() < self.n_aps(), "AP {a} out of range");
        let aps = &self.user_aps[u.index()];
        aps.binary_search_by_key(&a, |&(ap, _)| ap)
            .ok()
            .and_then(|i| self.user_signals[u.index()][i])
    }

    /// The APs user `u` can hear, with link rates (ascending `ApId`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn candidate_aps(&self, u: UserId) -> &[(ApId, Kbps)] {
        &self.user_aps[u.index()]
    }

    /// The users AP `a` can reach (ascending `UserId`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn reachable_users(&self, a: ApId) -> &[UserId] {
        &self.ap_users[a.index()]
    }

    /// The discrete rates the WLAN supports, ascending.
    pub fn supported_rates(&self) -> &[Kbps] {
        &self.rates
    }

    /// The basic (lowest supported) rate.
    pub fn basic_rate(&self) -> Kbps {
        self.rates[0]
    }

    /// The configured multicast rate policy.
    pub fn rate_policy(&self) -> RatePolicy {
        self.rate_policy
    }

    /// The rates an AP may use for *multicast* under the configured policy:
    /// every supported rate for [`RatePolicy::MultiRate`], only the basic
    /// rate for [`RatePolicy::BasicOnly`].
    pub fn multicast_rates(&self) -> &[Kbps] {
        match self.rate_policy {
            RatePolicy::MultiRate => &self.rates,
            RatePolicy::BasicOnly => &self.rates[..1],
        }
    }

    /// The transmission rate AP `a` must use to multicast to member user
    /// `u` under the configured policy: the link rate for multi-rate, the
    /// basic rate for basic-only. `None` if `u` is out of `a`'s range.
    pub fn multicast_rate_to(&self, a: ApId, u: UserId) -> Option<Kbps> {
        let link = self.link_rate(a, u)?;
        Some(match self.rate_policy {
            RatePolicy::MultiRate => link,
            RatePolicy::BasicOnly => self.basic_rate(),
        })
    }

    /// Users requesting session `s` (ascending id).
    pub fn session_users(&self, s: SessionId) -> impl Iterator<Item = UserId> + '_ {
        self.users
            .iter()
            .enumerate()
            .filter(move |(_, spec)| spec.session == s)
            .map(|(i, _)| UserId(i as u32))
    }

    /// True if some AP can reach user `u`.
    pub fn user_coverable(&self, u: UserId) -> bool {
        !self.user_aps[u.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: u32) -> Kbps {
        Kbps::from_mbps(m)
    }

    fn two_ap_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(4), mbps(5), mbps(6)]);
        let s1 = b.add_session(mbps(3));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let u1 = b.add_user(s1);
        let u2 = b.add_user(s1);
        b.link(a1, u1, mbps(3)).unwrap();
        b.link(a1, u2, mbps(6)).unwrap();
        b.link(a2, u2, mbps(5)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let inst = two_ap_instance();
        assert_eq!(inst.n_aps(), 2);
        assert_eq!(inst.n_users(), 2);
        assert_eq!(inst.n_sessions(), 1);
        assert_eq!(inst.session_rate(SessionId(0)), mbps(3));
        assert_eq!(inst.user_session(UserId(1)), SessionId(0));
        assert_eq!(inst.link_rate(ApId(0), UserId(0)), Some(mbps(3)));
        assert_eq!(inst.link_rate(ApId(1), UserId(0)), None);
        assert_eq!(
            inst.candidate_aps(UserId(1)),
            &[(ApId(0), mbps(6)), (ApId(1), mbps(5))]
        );
        assert_eq!(inst.reachable_users(ApId(0)), &[UserId(0), UserId(1)]);
        assert_eq!(inst.basic_rate(), mbps(3));
        assert!(inst.user_coverable(UserId(0)));
        assert_eq!(
            inst.session_users(SessionId(0)).collect::<Vec<_>>(),
            vec![UserId(0), UserId(1)]
        );
    }

    #[test]
    fn default_signal_is_rate() {
        let inst = two_ap_instance();
        assert_eq!(inst.signal(ApId(0), UserId(1)), Some(SignalStrength(6000)));
        assert_eq!(inst.signal(ApId(1), UserId(0)), None);
    }

    #[test]
    fn basic_only_policy_restricts_rates() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(6)]);
        b.rate_policy(RatePolicy::BasicOnly);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a, u, mbps(6)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.multicast_rates(), &[mbps(3)]);
        assert_eq!(inst.multicast_rate_to(a, u), Some(mbps(3)));
    }

    #[test]
    fn multirate_policy_uses_link_rate() {
        let inst = two_ap_instance();
        assert_eq!(inst.multicast_rate_to(ApId(0), UserId(1)), Some(mbps(6)));
        assert_eq!(inst.multicast_rate_to(ApId(1), UserId(0)), None);
    }

    #[test]
    fn rejects_unsupported_link_rate() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(6)]);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a, u, mbps(7)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::UnsupportedLinkRate { .. }
        ));
    }

    #[test]
    fn rejects_unknown_endpoints_and_sessions() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        assert!(matches!(
            b.link(ApId(9), u, mbps(6)).unwrap_err(),
            InstanceError::UnknownAp(_)
        ));
        assert!(matches!(
            b.link(a, UserId(9), mbps(6)).unwrap_err(),
            InstanceError::UnknownUser(_)
        ));
        // A user pointing at a bogus session is caught at build time.
        let mut b2 = InstanceBuilder::new();
        b2.add_ap(Load::ONE);
        b2.users.push(UserSpec {
            session: SessionId(5),
        });
        assert!(matches!(
            b2.build().unwrap_err(),
            InstanceError::UnknownSession(_)
        ));
    }

    #[test]
    fn rejects_zero_session_rate_and_negative_budget() {
        let mut b = InstanceBuilder::new();
        b.add_session(Kbps(0));
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::ZeroSessionRate(_)
        ));

        let mut b = InstanceBuilder::new();
        b.add_ap(Load::new(-1, 2));
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::NegativeBudget(_)
        ));

        let mut b = InstanceBuilder::new();
        b.supported_rates(std::iter::empty());
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::NoSupportedRates
        ));
    }

    #[test]
    fn duplicate_link_keeps_last() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(6)]);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a, u, mbps(3)).unwrap();
        b.link(a, u, mbps(6)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.link_rate(a, u), Some(mbps(6)));
    }

    #[test]
    fn serde_roundtrip() {
        let inst = two_ap_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_users(), inst.n_users());
        assert_eq!(back.link_rate(ApId(0), UserId(0)), Some(mbps(3)));
    }
}
