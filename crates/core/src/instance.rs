//! The WLAN problem instance: APs, users, sessions, link rates, budgets.
//!
//! Storage is struct-of-arrays CSR (compressed sparse row): one offset
//! array plus one packed edge arena per adjacency direction. At the
//! million-user scale the ROADMAP targets, the former `Vec<Vec<…>>`
//! representation paid one heap allocation (and its bookkeeping) per user
//! and per AP; the CSR arenas pay two allocations per direction total and
//! keep every per-user / per-AP row contiguous, so the solvers' inner
//! loops stream straight through memory.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::ids::{ApId, SessionId, UserId};
use crate::load::Load;
use crate::rate::{Kbps, RatePolicy, RateTable};

/// Received signal strength of a link, in an abstract monotone unit —
/// larger is stronger. The SSA baseline associates each user with the AP of
/// strongest signal. Topology generators set this to the negated distance
/// (in millimeters); hand-built instances default it to the link rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignalStrength(pub i64);

/// Sentinel stored in the signal arena for a link whose signal strength is
/// unknown (a legacy wire file may carry a link with a `null` signal).
/// `i64::MIN` is unreachable for real signals: generators emit negated
/// millimeter distances and hand-built instances default to the link rate.
pub const NO_SIGNAL: i64 = i64::MIN;

/// A multicast session (stream) offered by the WLAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Stream bit-rate.
    pub rate: Kbps,
}

/// A user and the single session it requests (§3.1: one stream per user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserSpec {
    /// The requested multicast session.
    pub session: SessionId,
}

/// Errors detected while building an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A link or budget referenced an AP that was never added.
    UnknownAp(ApId),
    /// A link referenced a user that was never added.
    UnknownUser(UserId),
    /// A user referenced a session that was never added.
    UnknownSession(SessionId),
    /// A link rate is not one of the supported discrete rates.
    UnsupportedLinkRate {
        /// The AP side of the link.
        ap: ApId,
        /// The user side of the link.
        user: UserId,
        /// The offending rate.
        rate: Kbps,
    },
    /// A session has a zero stream rate.
    ZeroSessionRate(SessionId),
    /// The supported-rate list is empty.
    NoSupportedRates,
    /// A budget is negative.
    NegativeBudget(ApId),
    /// A streamed user's candidate-AP list is not strictly ascending.
    UnsortedCandidates(UserId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UnknownAp(a) => write!(f, "unknown AP {a}"),
            InstanceError::UnknownUser(u) => write!(f, "unknown user {u}"),
            InstanceError::UnknownSession(s) => write!(f, "unknown session {s}"),
            InstanceError::UnsupportedLinkRate { ap, user, rate } => {
                write!(
                    f,
                    "link {ap}–{user} rate {rate} not in the supported rate set"
                )
            }
            InstanceError::ZeroSessionRate(s) => {
                write!(f, "session {s} has zero stream rate")
            }
            InstanceError::NoSupportedRates => write!(f, "no supported rates given"),
            InstanceError::NegativeBudget(a) => write!(f, "AP {a} has a negative budget"),
            InstanceError::UnsortedCandidates(u) => {
                write!(f, "user {u}: candidate APs not strictly ascending")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Builder for [`Instance`].
///
/// # Example
///
/// ```
/// use mcast_core::{InstanceBuilder, Kbps, Load};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = InstanceBuilder::new();
/// b.supported_rates([Kbps::from_mbps(3), Kbps::from_mbps(6)]);
/// let s = b.add_session(Kbps::from_mbps(3));
/// let a = b.add_ap(Load::ONE);
/// let u = b.add_user(s);
/// b.link(a, u, Kbps::from_mbps(6))?;
/// let instance = b.build()?;
/// assert_eq!(instance.n_users(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    sessions: Vec<SessionSpec>,
    users: Vec<UserSpec>,
    budgets: Vec<Load>,
    links: Vec<(ApId, UserId, Kbps, Option<SignalStrength>)>,
    supported_rates: Vec<Kbps>,
    rate_policy: RatePolicy,
}

impl Default for InstanceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceBuilder {
    /// Starts an empty builder with the Table 1 (802.11a) supported rates
    /// and the [`RatePolicy::MultiRate`] policy.
    pub fn new() -> Self {
        InstanceBuilder {
            sessions: Vec::new(),
            users: Vec::new(),
            budgets: Vec::new(),
            links: Vec::new(),
            supported_rates: RateTable::ieee80211a().rates().collect(),
            rate_policy: RatePolicy::MultiRate,
        }
    }

    /// Replaces the discrete set of rates the WLAN supports.
    pub fn supported_rates<I: IntoIterator<Item = Kbps>>(&mut self, rates: I) -> &mut Self {
        self.supported_rates = rates.into_iter().collect();
        self
    }

    /// Sets the multicast rate policy (multi-rate vs basic-rate-only).
    pub fn rate_policy(&mut self, policy: RatePolicy) -> &mut Self {
        self.rate_policy = policy;
        self
    }

    /// Adds a session with the given stream rate.
    pub fn add_session(&mut self, rate: Kbps) -> SessionId {
        let id = SessionId(self.sessions.len() as u32);
        self.sessions.push(SessionSpec { rate });
        id
    }

    /// Adds an AP with the given multicast load budget.
    pub fn add_ap(&mut self, budget: Load) -> ApId {
        let id = ApId(self.budgets.len() as u32);
        self.budgets.push(budget);
        id
    }

    /// Adds a user requesting `session`.
    pub fn add_user(&mut self, session: SessionId) -> UserId {
        let id = UserId(self.users.len() as u32);
        self.users.push(UserSpec { session });
        id
    }

    /// Declares a link with the given maximum data rate; signal strength
    /// defaults to the rate in kbps (higher rate ⇒ stronger signal).
    ///
    /// # Errors
    ///
    /// [`InstanceError::UnknownAp`] / [`InstanceError::UnknownUser`] if the
    /// endpoints were not added first.
    pub fn link(&mut self, ap: ApId, user: UserId, rate: Kbps) -> Result<&mut Self, InstanceError> {
        self.link_with_signal(ap, user, rate, SignalStrength(i64::from(rate.0)))
    }

    /// Declares a link with an explicit signal strength.
    ///
    /// # Errors
    ///
    /// [`InstanceError::UnknownAp`] / [`InstanceError::UnknownUser`] if the
    /// endpoints were not added first.
    pub fn link_with_signal(
        &mut self,
        ap: ApId,
        user: UserId,
        rate: Kbps,
        signal: SignalStrength,
    ) -> Result<&mut Self, InstanceError> {
        if ap.index() >= self.budgets.len() {
            return Err(InstanceError::UnknownAp(ap));
        }
        if user.index() >= self.users.len() {
            return Err(InstanceError::UnknownUser(user));
        }
        self.links.push((ap, user, rate, Some(signal)));
        Ok(self)
    }

    /// Finalizes and validates the instance.
    ///
    /// # Errors
    ///
    /// See [`InstanceError`]. Duplicate links keep the last declaration.
    pub fn build(self) -> Result<Instance, InstanceError> {
        let n_aps = self.budgets.len();
        let n_users = self.users.len();
        let n_sessions = self.sessions.len();

        let mut rates = self.supported_rates;
        if rates.is_empty() {
            return Err(InstanceError::NoSupportedRates);
        }
        rates.sort_unstable();
        rates.dedup();

        for (s, spec) in self.sessions.iter().enumerate() {
            if spec.rate.0 == 0 {
                return Err(InstanceError::ZeroSessionRate(SessionId(s as u32)));
            }
        }
        for (a, b) in self.budgets.iter().enumerate() {
            if b.is_negative() {
                return Err(InstanceError::NegativeBudget(ApId(a as u32)));
            }
        }
        for user in &self.users {
            if user.session.index() >= n_sessions {
                return Err(InstanceError::UnknownSession(user.session));
            }
        }
        for &(ap, user, rate, _) in &self.links {
            if rates.binary_search(&rate).is_err() {
                return Err(InstanceError::UnsupportedLinkRate { ap, user, rate });
            }
        }

        // CSR straight from the link list — O(L log L), never
        // O(APs × users). Stable (ap, user, declaration-index) order means
        // ascending ApId per user, ascending UserId per AP, and "last
        // declaration wins" for duplicates, exactly as the former dense
        // matrix produced.
        type IndexedLink = (usize, (ApId, UserId, Kbps, Option<SignalStrength>));
        let mut indexed: Vec<IndexedLink> = self.links.into_iter().enumerate().collect();
        indexed.sort_unstable_by_key(|&(i, (a, u, _, _))| (a, u, i));

        // Pass 1: exact post-dedup degrees.
        let mut user_deg = vec![0u32; n_users];
        let mut ap_deg = vec![0u32; n_aps];
        let mut n_links = 0usize;
        {
            let mut it = indexed.iter().peekable();
            while let Some(&(_, (a, u, _, _))) = it.next() {
                if matches!(it.peek(), Some(&&(_, (a2, u2, _, _))) if a2 == a && u2 == u) {
                    continue; // a later declaration of the same link supersedes this one
                }
                user_deg[u.index()] += 1;
                ap_deg[a.index()] += 1;
                n_links += 1;
            }
        }

        // Pass 2: prefix sums, then fill through per-row write cursors.
        // The AP-major scan visits each user's links in ascending ApId and
        // each AP's users in ascending UserId, so both arenas come out
        // sorted without another pass.
        let user_off = prefix_sum(&user_deg);
        let ap_off = prefix_sum(&ap_deg);
        let mut user_cur: Vec<u32> = user_off[..n_users].to_vec();
        let mut ap_cur: Vec<u32> = ap_off[..n_aps].to_vec();
        let mut user_adj = vec![(ApId(0), Kbps(0)); n_links];
        let mut user_sig = vec![NO_SIGNAL; n_links];
        let mut ap_adj = vec![UserId(0); n_links];
        let mut it = indexed.into_iter().peekable();
        while let Some((_, (a, u, r, s))) = it.next() {
            if matches!(it.peek(), Some(&(_, (a2, u2, _, _))) if a2 == a && u2 == u) {
                continue;
            }
            let uc = user_cur[u.index()] as usize;
            user_adj[uc] = (a, r);
            user_sig[uc] = s.map_or(NO_SIGNAL, |sig| sig.0);
            user_cur[u.index()] += 1;
            let ac = ap_cur[a.index()] as usize;
            ap_adj[ac] = u;
            ap_cur[a.index()] += 1;
        }

        Ok(Instance {
            sessions: self.sessions,
            users: self.users,
            budgets: self.budgets,
            user_off,
            user_adj,
            user_sig,
            ap_off,
            ap_adj,
            rates,
            rate_policy: self.rate_policy,
        })
    }
}

/// Exclusive prefix sum with a trailing total: `degrees` of length `n`
/// become offsets of length `n + 1`.
fn prefix_sum(degrees: &[u32]) -> Vec<u32> {
    let mut off = Vec::with_capacity(degrees.len() + 1);
    let mut acc = 0u32;
    off.push(0);
    for &d in degrees {
        acc += d;
        off.push(acc);
    }
    off
}

/// Chunk-friendly [`Instance`] constructor for streamed scenario
/// generation: users arrive one at a time, in id order, each with its
/// finished candidate-AP row, and go straight into the user-major CSR
/// arena. Nothing proportional to the link count is buffered outside the
/// arenas themselves — no per-link declaration list, no sort.
///
/// The per-user rows must already be strictly ascending by [`ApId`]
/// (spatial-grid queries return neighbors in ascending point order, so
/// generators get this for free). [`finish`](StreamingInstanceBuilder::finish)
/// derives the AP-major arena with one counting pass.
#[derive(Debug, Clone)]
pub struct StreamingInstanceBuilder {
    sessions: Vec<SessionSpec>,
    budgets: Vec<Load>,
    rates: Vec<Kbps>,
    rate_policy: RatePolicy,
    users: Vec<UserSpec>,
    user_off: Vec<u32>,
    user_adj: Vec<(ApId, Kbps)>,
    user_sig: Vec<i64>,
}

impl StreamingInstanceBuilder {
    /// Starts a streaming build over a fixed AP/session/rate population.
    ///
    /// # Errors
    ///
    /// The same up-front checks as [`InstanceBuilder::build`]:
    /// [`InstanceError::NoSupportedRates`],
    /// [`InstanceError::ZeroSessionRate`],
    /// [`InstanceError::NegativeBudget`].
    pub fn new(
        sessions: Vec<SessionSpec>,
        budgets: Vec<Load>,
        supported_rates: impl IntoIterator<Item = Kbps>,
        rate_policy: RatePolicy,
    ) -> Result<StreamingInstanceBuilder, InstanceError> {
        let mut rates: Vec<Kbps> = supported_rates.into_iter().collect();
        if rates.is_empty() {
            return Err(InstanceError::NoSupportedRates);
        }
        rates.sort_unstable();
        rates.dedup();
        for (s, spec) in sessions.iter().enumerate() {
            if spec.rate.0 == 0 {
                return Err(InstanceError::ZeroSessionRate(SessionId(s as u32)));
            }
        }
        for (a, b) in budgets.iter().enumerate() {
            if b.is_negative() {
                return Err(InstanceError::NegativeBudget(ApId(a as u32)));
            }
        }
        Ok(StreamingInstanceBuilder {
            sessions,
            budgets,
            rates,
            rate_policy,
            users: Vec::new(),
            user_off: vec![0],
            user_adj: Vec::new(),
            user_sig: Vec::new(),
        })
    }

    /// Pre-sizes the arenas (an optimization only; the arenas grow as
    /// needed either way).
    pub fn reserve(&mut self, n_users: usize, n_links: usize) {
        self.users.reserve(n_users);
        self.user_off.reserve(n_users);
        self.user_adj.reserve(n_links);
        self.user_sig.reserve(n_links);
    }

    /// Appends the next user (ids are assigned in arrival order) with its
    /// complete candidate row, strictly ascending by [`ApId`].
    ///
    /// # Errors
    ///
    /// [`InstanceError::UnknownSession`] / [`InstanceError::UnknownAp`] /
    /// [`InstanceError::UnsupportedLinkRate`] on a bad reference, and
    /// [`InstanceError::UnsortedCandidates`] if the row is out of order or
    /// repeats an AP.
    pub fn push_user(
        &mut self,
        session: SessionId,
        links: &[(ApId, Kbps, SignalStrength)],
    ) -> Result<UserId, InstanceError> {
        let u = UserId(self.users.len() as u32);
        if session.index() >= self.sessions.len() {
            return Err(InstanceError::UnknownSession(session));
        }
        let mut prev: Option<ApId> = None;
        for &(a, r, _) in links {
            if a.index() >= self.budgets.len() {
                return Err(InstanceError::UnknownAp(a));
            }
            if self.rates.binary_search(&r).is_err() {
                return Err(InstanceError::UnsupportedLinkRate {
                    ap: a,
                    user: u,
                    rate: r,
                });
            }
            if prev.is_some_and(|p| p >= a) {
                return Err(InstanceError::UnsortedCandidates(u));
            }
            prev = Some(a);
        }
        self.users.push(UserSpec { session });
        for &(a, r, sig) in links {
            self.user_adj.push((a, r));
            self.user_sig.push(sig.0);
        }
        self.user_off.push(self.user_adj.len() as u32);
        Ok(u)
    }

    /// Number of users pushed so far.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of links pushed so far.
    pub fn n_links(&self) -> usize {
        self.user_adj.len()
    }

    /// Seals the instance: one counting pass over the user arena derives
    /// the AP-major CSR.
    pub fn finish(self) -> Instance {
        let (ap_off, ap_adj) = transpose_csr(self.budgets.len(), &self.user_off, &self.user_adj);
        Instance {
            sessions: self.sessions,
            users: self.users,
            budgets: self.budgets,
            user_off: self.user_off,
            user_adj: self.user_adj,
            user_sig: self.user_sig,
            ap_off,
            ap_adj,
            rates: self.rates,
            rate_policy: self.rate_policy,
        }
    }
}

/// Derives the AP-major CSR (`ap_off`, `ap_adj`) from a finished
/// user-major arena. Scanning users in ascending id order fills each AP's
/// row in ascending [`UserId`] without sorting.
fn transpose_csr(
    n_aps: usize,
    user_off: &[u32],
    user_adj: &[(ApId, Kbps)],
) -> (Vec<u32>, Vec<UserId>) {
    let mut ap_deg = vec![0u32; n_aps];
    for &(a, _) in user_adj {
        ap_deg[a.index()] += 1;
    }
    let ap_off = prefix_sum(&ap_deg);
    let mut ap_cur: Vec<u32> = ap_off[..n_aps].to_vec();
    let mut ap_adj = vec![UserId(0); user_adj.len()];
    for u in 0..user_off.len().saturating_sub(1) {
        for &(a, _) in &user_adj[user_off[u] as usize..user_off[u + 1] as usize] {
            ap_adj[ap_cur[a.index()] as usize] = UserId(u as u32);
            ap_cur[a.index()] += 1;
        }
    }
    (ap_off, ap_adj)
}

/// An immutable, validated WLAN multicast-association instance.
///
/// All three problems (MNU, BLA, MLA), the distributed algorithms, and the
/// SSA baseline operate on this type.
///
/// Storage is sparse CSR, struct-of-arrays: per-direction offset arrays
/// into packed edge arenas, sized by the number of actual links rather
/// than APs × users. Construction is O(L log L); [`Instance::link_rate`]
/// and [`Instance::signal`] are O(log degree);
/// [`Instance::candidate_aps`] and [`Instance::reachable_users`] are
/// zero-copy slices of the arenas.
///
/// The serialized form is the sparse `mcast-instance/v1` wire (links on
/// the wire, never an APs × users matrix); files written by the older
/// dense-matrix wire still load, and [`Instance::to_legacy_dense_value`]
/// can still emit that shape for downgrade interchange.
#[derive(Debug, Clone)]
pub struct Instance {
    sessions: Vec<SessionSpec>,
    users: Vec<UserSpec>,
    budgets: Vec<Load>,
    /// `user_off[u]..user_off[u+1]` indexes user `u`'s row in `user_adj`
    /// and `user_sig`.
    user_off: Vec<u32>,
    /// Per-user candidate APs with link rates, ascending `ApId` per row.
    user_adj: Vec<(ApId, Kbps)>,
    /// Parallel to `user_adj`; [`NO_SIGNAL`] when the wire had none.
    user_sig: Vec<i64>,
    /// `ap_off[a]..ap_off[a+1]` indexes AP `a`'s row in `ap_adj`.
    ap_off: Vec<u32>,
    /// Per-AP reachable users, ascending `UserId` per row.
    ap_adj: Vec<UserId>,
    rates: Vec<Kbps>,
    rate_policy: RatePolicy,
}

/// Version tag of the sparse wire format ([`Serialize`] output).
pub const SPARSE_FORMAT: &str = "mcast-instance/v1";

impl Instance {
    /// Number of access points.
    pub fn n_aps(&self) -> usize {
        self.budgets.len()
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of (deduplicated) AP–user links.
    pub fn n_links(&self) -> usize {
        self.user_adj.len()
    }

    /// Estimated resident heap bytes of this instance's arrays — the
    /// number `repro gen` and the scale bench report so memory regressions
    /// show up in every run. Counts the CSR arenas, offsets, and per-entity
    /// spec arrays; excludes allocator overhead.
    pub fn resident_bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        self.sessions.len() * size_of::<SessionSpec>()
            + self.users.len() * size_of::<UserSpec>()
            + self.budgets.len() * size_of::<Load>()
            + self.user_off.len() * size_of::<u32>()
            + self.user_adj.len() * size_of::<(ApId, Kbps)>()
            + self.user_sig.len() * size_of::<i64>()
            + self.ap_off.len() * size_of::<u32>()
            + self.ap_adj.len() * size_of::<UserId>()
            + self.rates.len() * size_of::<Kbps>()
    }

    /// Iterator over all AP ids.
    pub fn aps(&self) -> impl Iterator<Item = ApId> {
        (0..self.n_aps() as u32).map(ApId)
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.n_users() as u32).map(UserId)
    }

    /// Iterator over all session ids.
    pub fn sessions(&self) -> impl Iterator<Item = SessionId> {
        (0..self.n_sessions() as u32).map(SessionId)
    }

    /// The stream rate of session `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn session_rate(&self, s: SessionId) -> Kbps {
        self.sessions[s.index()].rate
    }

    /// The session user `u` requests.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn user_session(&self, u: UserId) -> SessionId {
        self.users[u.index()].session
    }

    /// The multicast load budget of AP `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn budget(&self, a: ApId) -> Load {
        self.budgets[a.index()]
    }

    /// User `u`'s row bounds in the user-major arenas.
    fn user_row(&self, u: UserId) -> (usize, usize) {
        (
            self.user_off[u.index()] as usize,
            self.user_off[u.index() + 1] as usize,
        )
    }

    /// The maximum data rate of the `a`–`u` link, or `None` if out of range.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `u` is out of range.
    pub fn link_rate(&self, a: ApId, u: UserId) -> Option<Kbps> {
        assert!(a.index() < self.n_aps(), "AP {a} out of range");
        let (lo, hi) = self.user_row(u);
        let row = &self.user_adj[lo..hi];
        row.binary_search_by_key(&a, |&(ap, _)| ap)
            .ok()
            .map(|i| row[i].1)
    }

    /// The signal strength of the `a`–`u` link, or `None` if out of range.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `u` is out of range.
    pub fn signal(&self, a: ApId, u: UserId) -> Option<SignalStrength> {
        assert!(a.index() < self.n_aps(), "AP {a} out of range");
        let (lo, hi) = self.user_row(u);
        self.user_adj[lo..hi]
            .binary_search_by_key(&a, |&(ap, _)| ap)
            .ok()
            .and_then(|i| {
                let s = self.user_sig[lo + i];
                (s != NO_SIGNAL).then_some(SignalStrength(s))
            })
    }

    /// The APs user `u` can hear, with link rates (ascending `ApId`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn candidate_aps(&self, u: UserId) -> &[(ApId, Kbps)] {
        let (lo, hi) = self.user_row(u);
        &self.user_adj[lo..hi]
    }

    /// The users AP `a` can reach (ascending `UserId`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn reachable_users(&self, a: ApId) -> &[UserId] {
        &self.ap_adj[self.ap_off[a.index()] as usize..self.ap_off[a.index() + 1] as usize]
    }

    /// The discrete rates the WLAN supports, ascending.
    pub fn supported_rates(&self) -> &[Kbps] {
        &self.rates
    }

    /// The basic (lowest supported) rate.
    pub fn basic_rate(&self) -> Kbps {
        self.rates[0]
    }

    /// The configured multicast rate policy.
    pub fn rate_policy(&self) -> RatePolicy {
        self.rate_policy
    }

    /// The rates an AP may use for *multicast* under the configured policy:
    /// every supported rate for [`RatePolicy::MultiRate`], only the basic
    /// rate for [`RatePolicy::BasicOnly`].
    pub fn multicast_rates(&self) -> &[Kbps] {
        match self.rate_policy {
            RatePolicy::MultiRate => &self.rates,
            RatePolicy::BasicOnly => &self.rates[..1],
        }
    }

    /// The transmission rate AP `a` must use to multicast to member user
    /// `u` under the configured policy: the link rate for multi-rate, the
    /// basic rate for basic-only. `None` if `u` is out of `a`'s range.
    pub fn multicast_rate_to(&self, a: ApId, u: UserId) -> Option<Kbps> {
        let link = self.link_rate(a, u)?;
        Some(match self.rate_policy {
            RatePolicy::MultiRate => link,
            RatePolicy::BasicOnly => self.basic_rate(),
        })
    }

    /// Users requesting session `s` (ascending id).
    pub fn session_users(&self, s: SessionId) -> impl Iterator<Item = UserId> + '_ {
        self.users
            .iter()
            .enumerate()
            .filter(move |(_, spec)| spec.session == s)
            .map(|(i, _)| UserId(i as u32))
    }

    /// True if some AP can reach user `u`.
    pub fn user_coverable(&self, u: UserId) -> bool {
        let (lo, hi) = self.user_row(u);
        lo < hi
    }

    /// Assembles an instance directly from validated-on-entry CSR parts —
    /// the constructor the binary `.mcb` reader and the sparse JSON wire
    /// share. `user_sig` runs parallel to `user_adj` with [`NO_SIGNAL`]
    /// marking an absent signal; the AP-major arena is derived here.
    ///
    /// # Errors
    ///
    /// A description of the first structural violation: offset arrays that
    /// do not line up, rows out of order, references out of range,
    /// unsupported link rates, or the same checks
    /// [`InstanceBuilder::build`] applies to sessions/budgets/rates.
    #[allow(clippy::too_many_arguments)]
    pub fn from_csr(
        sessions: Vec<SessionSpec>,
        users: Vec<UserSpec>,
        budgets: Vec<Load>,
        user_off: Vec<u32>,
        user_adj: Vec<(ApId, Kbps)>,
        user_sig: Vec<i64>,
        mut rates: Vec<Kbps>,
        rate_policy: RatePolicy,
    ) -> Result<Instance, String> {
        let n_aps = budgets.len();
        let n_users = users.len();
        if rates.is_empty() {
            return Err("no supported rates".into());
        }
        rates.sort_unstable();
        rates.dedup();
        for (s, spec) in sessions.iter().enumerate() {
            if spec.rate.0 == 0 {
                return Err(format!("session {s} has zero stream rate"));
            }
        }
        for (a, b) in budgets.iter().enumerate() {
            if b.is_negative() {
                return Err(format!("AP {a} has a negative budget"));
            }
        }
        for (u, spec) in users.iter().enumerate() {
            if spec.session.index() >= sessions.len() {
                return Err(format!(
                    "user {u} requests unknown session {}",
                    spec.session
                ));
            }
        }
        if user_off.len() != n_users + 1 {
            return Err(format!(
                "user_off has {} entries for {n_users} users",
                user_off.len()
            ));
        }
        if user_off[0] != 0 || *user_off.last().expect("non-empty") != user_adj.len() as u32 {
            return Err("user_off does not span the link arena".into());
        }
        if user_sig.len() != user_adj.len() {
            return Err(format!(
                "signal arena has {} entries for {} links",
                user_sig.len(),
                user_adj.len()
            ));
        }
        for u in 0..n_users {
            let (lo, hi) = (user_off[u] as usize, user_off[u + 1] as usize);
            if lo > hi || hi > user_adj.len() {
                return Err(format!("user {u}: offsets {lo}..{hi} out of order"));
            }
            let mut prev: Option<ApId> = None;
            for &(a, r) in &user_adj[lo..hi] {
                if a.index() >= n_aps {
                    return Err(format!("user {u}: link to unknown AP {a}"));
                }
                if rates.binary_search(&r).is_err() {
                    return Err(format!("user {u}: link rate {r} unsupported"));
                }
                if prev.is_some_and(|p| p >= a) {
                    return Err(format!("user {u}: candidate APs not strictly ascending"));
                }
                prev = Some(a);
            }
        }
        let (ap_off, ap_adj) = transpose_csr(n_aps, &user_off, &user_adj);
        Ok(Instance {
            sessions,
            users,
            budgets,
            user_off,
            user_adj,
            user_sig,
            ap_off,
            ap_adj,
            rates,
            rate_policy,
        })
    }

    /// Decomposes into the CSR parts [`Instance::from_csr`] accepts, in
    /// the same order — the writer-side twin the `.mcb` encoder uses.
    /// Returns `(sessions, users, budgets, user_off, user_adj, user_sig,
    /// rates, rate_policy)`.
    #[allow(clippy::type_complexity)]
    pub fn csr_parts(
        &self,
    ) -> (
        &[SessionSpec],
        &[UserSpec],
        &[Load],
        &[u32],
        &[(ApId, Kbps)],
        &[i64],
        &[Kbps],
        RatePolicy,
    ) {
        (
            &self.sessions,
            &self.users,
            &self.budgets,
            &self.user_off,
            &self.user_adj,
            &self.user_sig,
            &self.rates,
            self.rate_policy,
        )
    }

    /// Renders the pre-v1 dense wire shape (`link`/`signal` matrices of
    /// APs × users entries plus redundant adjacency lists) for interchange
    /// with tooling that still expects it. This materializes O(APs × users)
    /// values — exactly the blowup the sparse wire exists to avoid — so it
    /// is only reachable behind an explicit flag (`repro gen
    /// --legacy-dense`), never on the default path.
    pub fn to_legacy_dense_value(&self) -> Value {
        let n_aps = self.n_aps();
        let n_users = self.n_users();
        let mut link = vec![Value::Null; n_aps * n_users];
        let mut signal = vec![Value::Null; n_aps * n_users];
        for u in 0..n_users {
            let (lo, hi) = self.user_row(UserId(u as u32));
            for i in lo..hi {
                let (a, r) = self.user_adj[i];
                let idx = a.index() * n_users + u;
                link[idx] = Value::Int(i128::from(r.0));
                if self.user_sig[i] != NO_SIGNAL {
                    signal[idx] = Value::Int(i128::from(self.user_sig[i]));
                }
            }
        }
        let user_aps: Vec<Value> = (0..n_users)
            .map(|u| self.candidate_aps(UserId(u as u32)).serialize_value())
            .collect();
        let ap_users: Vec<Value> = (0..n_aps)
            .map(|a| self.reachable_users(ApId(a as u32)).serialize_value())
            .collect();
        Value::Object(vec![
            ("sessions".into(), self.sessions.serialize_value()),
            ("users".into(), self.users.serialize_value()),
            ("budgets".into(), self.budgets.serialize_value()),
            ("link".into(), Value::Array(link)),
            ("signal".into(), Value::Array(signal)),
            ("user_aps".into(), Value::Array(user_aps)),
            ("ap_users".into(), Value::Array(ap_users)),
            ("rates".into(), self.rates.serialize_value()),
            ("rate_policy".into(), self.rate_policy.serialize_value()),
        ])
    }
}

// ---- wire formats ------------------------------------------------------
//
// Serialize emits the sparse `mcast-instance/v1` shape: links on the wire
// (one `[ap, rate, signal]` triple per link, user-major behind `user_off`),
// never a dense matrix. Deserialize accepts both that shape (dispatched on
// the `format` tag) and the pre-v1 dense-matrix shape (recognized by its
// `link` field), so every scenario file ever written by this repository
// still loads.

impl Serialize for Instance {
    fn serialize_value(&self) -> Value {
        let links: Vec<Value> = self
            .user_adj
            .iter()
            .zip(&self.user_sig)
            .map(|(&(a, r), &s)| {
                Value::Array(vec![
                    Value::Int(i128::from(a.0)),
                    Value::Int(i128::from(r.0)),
                    if s == NO_SIGNAL {
                        Value::Null
                    } else {
                        Value::Int(i128::from(s))
                    },
                ])
            })
            .collect();
        Value::Object(vec![
            ("format".into(), Value::Str(SPARSE_FORMAT.into())),
            ("sessions".into(), self.sessions.serialize_value()),
            (
                "users".into(),
                Value::Array(
                    self.users
                        .iter()
                        .map(|u| Value::Int(i128::from(u.session.0)))
                        .collect(),
                ),
            ),
            ("budgets".into(), self.budgets.serialize_value()),
            (
                "user_off".into(),
                Value::Array(
                    self.user_off
                        .iter()
                        .map(|&o| Value::Int(i128::from(o)))
                        .collect(),
                ),
            ),
            ("links".into(), Value::Array(links)),
            ("rates".into(), self.rates.serialize_value()),
            ("rate_policy".into(), self.rate_policy.serialize_value()),
        ])
    }
}

impl Deserialize for Instance {
    fn deserialize_value(v: &Value) -> Result<Instance, DeError> {
        match v.get("format") {
            Some(Value::Str(tag)) if tag == SPARSE_FORMAT => sparse_from_value(v),
            Some(other) => Err(DeError::custom(format!(
                "unknown instance format tag: {other:?}"
            ))),
            None if v.get("link").is_some() => legacy_dense_from_value(v),
            None => Err(DeError::custom(
                "instance: neither a format tag nor a legacy dense `link` matrix",
            )),
        }
    }
}

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError::custom(format!("instance: missing field `{name}`")))
}

fn u32_array(v: &Value, name: &str) -> Result<Vec<u32>, DeError> {
    let Value::Array(items) = v else {
        return Err(DeError::custom(format!(
            "instance: `{name}` must be an array, got {}",
            v.kind()
        )));
    };
    items
        .iter()
        .map(|it| match it {
            Value::Int(i) => u32::try_from(*i)
                .map_err(|_| DeError::custom(format!("instance: `{name}` entry {i} out of range"))),
            other => Err(DeError::custom(format!(
                "instance: `{name}` entry must be an integer, got {}",
                other.kind()
            ))),
        })
        .collect()
}

fn sparse_from_value(v: &Value) -> Result<Instance, DeError> {
    let sessions = Vec::<SessionSpec>::deserialize_value(field(v, "sessions")?)?;
    let users: Vec<UserSpec> = u32_array(field(v, "users")?, "users")?
        .into_iter()
        .map(|s| UserSpec {
            session: SessionId(s),
        })
        .collect();
    let budgets = Vec::<Load>::deserialize_value(field(v, "budgets")?)?;
    let user_off = u32_array(field(v, "user_off")?, "user_off")?;
    let Value::Array(raw_links) = field(v, "links")? else {
        return Err(DeError::custom("instance: `links` must be an array"));
    };
    let mut user_adj = Vec::with_capacity(raw_links.len());
    let mut user_sig = Vec::with_capacity(raw_links.len());
    for l in raw_links {
        let Value::Array(t) = l else {
            return Err(DeError::custom("instance: each link must be an array"));
        };
        let [Value::Int(a), Value::Int(r), sig] = t.as_slice() else {
            return Err(DeError::custom(
                "instance: each link must be [ap, rate, signal]",
            ));
        };
        let a = u32::try_from(*a)
            .map_err(|_| DeError::custom(format!("instance: link AP {a} out of range")))?;
        let r = u32::try_from(*r)
            .map_err(|_| DeError::custom(format!("instance: link rate {r} out of range")))?;
        user_adj.push((ApId(a), Kbps(r)));
        user_sig.push(match sig {
            Value::Null => NO_SIGNAL,
            Value::Int(s) => i64::try_from(*s)
                .map_err(|_| DeError::custom(format!("instance: link signal {s} out of range")))?,
            other => {
                return Err(DeError::custom(format!(
                    "instance: link signal must be an integer or null, got {}",
                    other.kind()
                )))
            }
        });
    }
    let rates = Vec::<Kbps>::deserialize_value(field(v, "rates")?)?;
    let rate_policy = RatePolicy::deserialize_value(field(v, "rate_policy")?)?;
    Instance::from_csr(
        sessions,
        users,
        budgets,
        user_off,
        user_adj,
        user_sig,
        rates,
        rate_policy,
    )
    .map_err(DeError::custom)
}

fn legacy_dense_from_value(v: &Value) -> Result<Instance, DeError> {
    let sessions = Vec::<SessionSpec>::deserialize_value(field(v, "sessions")?)?;
    let users = Vec::<UserSpec>::deserialize_value(field(v, "users")?)?;
    let budgets = Vec::<Load>::deserialize_value(field(v, "budgets")?)?;
    let link = Vec::<Option<Kbps>>::deserialize_value(field(v, "link")?)?;
    let signal = Vec::<Option<SignalStrength>>::deserialize_value(field(v, "signal")?)?;
    // Required by the legacy shape, but the matrices are authoritative —
    // adjacency is rebuilt from them, exactly as the pre-sparse reader did.
    field(v, "user_aps")?;
    field(v, "ap_users")?;
    let rates = Vec::<Kbps>::deserialize_value(field(v, "rates")?)?;
    let rate_policy = RatePolicy::deserialize_value(field(v, "rate_policy")?)?;

    let n_aps = budgets.len();
    let n_users = users.len();
    if link.len() != n_aps * n_users || signal.len() != n_aps * n_users {
        return Err(DeError::custom(format!(
            "instance matrices sized {}/{} for {n_aps} APs x {n_users} users",
            link.len(),
            signal.len()
        )));
    }
    // AP-major scan of the matrix, counting then filling — the same order
    // that built the legacy adjacency lists.
    let mut user_deg = vec![0u32; n_users];
    let mut n_links = 0usize;
    for idx in 0..n_aps * n_users {
        if link[idx].is_some() {
            user_deg[idx % n_users] += 1;
            n_links += 1;
        }
    }
    let user_off = prefix_sum(&user_deg);
    let mut user_cur: Vec<u32> = user_off[..n_users].to_vec();
    let mut user_adj = vec![(ApId(0), Kbps(0)); n_links];
    let mut user_sig = vec![NO_SIGNAL; n_links];
    for a in 0..n_aps {
        for u in 0..n_users {
            if let Some(r) = link[a * n_users + u] {
                let c = user_cur[u] as usize;
                user_adj[c] = (ApId(a as u32), r);
                user_sig[c] = signal[a * n_users + u].map_or(NO_SIGNAL, |s| s.0);
                user_cur[u] += 1;
            }
        }
    }
    Instance::from_csr(
        sessions,
        users,
        budgets,
        user_off,
        user_adj,
        user_sig,
        rates,
        rate_policy,
    )
    .map_err(DeError::custom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: u32) -> Kbps {
        Kbps::from_mbps(m)
    }

    fn two_ap_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(4), mbps(5), mbps(6)]);
        let s1 = b.add_session(mbps(3));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let u1 = b.add_user(s1);
        let u2 = b.add_user(s1);
        b.link(a1, u1, mbps(3)).unwrap();
        b.link(a1, u2, mbps(6)).unwrap();
        b.link(a2, u2, mbps(5)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let inst = two_ap_instance();
        assert_eq!(inst.n_aps(), 2);
        assert_eq!(inst.n_users(), 2);
        assert_eq!(inst.n_sessions(), 1);
        assert_eq!(inst.n_links(), 3);
        assert_eq!(inst.session_rate(SessionId(0)), mbps(3));
        assert_eq!(inst.user_session(UserId(1)), SessionId(0));
        assert_eq!(inst.link_rate(ApId(0), UserId(0)), Some(mbps(3)));
        assert_eq!(inst.link_rate(ApId(1), UserId(0)), None);
        assert_eq!(
            inst.candidate_aps(UserId(1)),
            &[(ApId(0), mbps(6)), (ApId(1), mbps(5))]
        );
        assert_eq!(inst.reachable_users(ApId(0)), &[UserId(0), UserId(1)]);
        assert_eq!(inst.basic_rate(), mbps(3));
        assert!(inst.user_coverable(UserId(0)));
        assert_eq!(
            inst.session_users(SessionId(0)).collect::<Vec<_>>(),
            vec![UserId(0), UserId(1)]
        );
        assert!(inst.resident_bytes_estimate() > 0);
    }

    #[test]
    fn default_signal_is_rate() {
        let inst = two_ap_instance();
        assert_eq!(inst.signal(ApId(0), UserId(1)), Some(SignalStrength(6000)));
        assert_eq!(inst.signal(ApId(1), UserId(0)), None);
    }

    #[test]
    fn basic_only_policy_restricts_rates() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(6)]);
        b.rate_policy(RatePolicy::BasicOnly);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a, u, mbps(6)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.multicast_rates(), &[mbps(3)]);
        assert_eq!(inst.multicast_rate_to(a, u), Some(mbps(3)));
    }

    #[test]
    fn multirate_policy_uses_link_rate() {
        let inst = two_ap_instance();
        assert_eq!(inst.multicast_rate_to(ApId(0), UserId(1)), Some(mbps(6)));
        assert_eq!(inst.multicast_rate_to(ApId(1), UserId(0)), None);
    }

    #[test]
    fn rejects_unsupported_link_rate() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(6)]);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a, u, mbps(7)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::UnsupportedLinkRate { .. }
        ));
    }

    #[test]
    fn rejects_unknown_endpoints_and_sessions() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        assert!(matches!(
            b.link(ApId(9), u, mbps(6)).unwrap_err(),
            InstanceError::UnknownAp(_)
        ));
        assert!(matches!(
            b.link(a, UserId(9), mbps(6)).unwrap_err(),
            InstanceError::UnknownUser(_)
        ));
        // A user pointing at a bogus session is caught at build time.
        let mut b2 = InstanceBuilder::new();
        b2.add_ap(Load::ONE);
        b2.users.push(UserSpec {
            session: SessionId(5),
        });
        assert!(matches!(
            b2.build().unwrap_err(),
            InstanceError::UnknownSession(_)
        ));
    }

    #[test]
    fn rejects_zero_session_rate_and_negative_budget() {
        let mut b = InstanceBuilder::new();
        b.add_session(Kbps(0));
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::ZeroSessionRate(_)
        ));

        let mut b = InstanceBuilder::new();
        b.add_ap(Load::new(-1, 2));
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::NegativeBudget(_)
        ));

        let mut b = InstanceBuilder::new();
        b.supported_rates(std::iter::empty());
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::NoSupportedRates
        ));
    }

    #[test]
    fn duplicate_link_keeps_last() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(6)]);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a, u, mbps(3)).unwrap();
        b.link(a, u, mbps(6)).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.n_links(), 1);
        assert_eq!(inst.link_rate(a, u), Some(mbps(6)));
    }

    #[test]
    fn serde_roundtrip() {
        let inst = two_ap_instance();
        let json = serde_json::to_string(&inst).unwrap();
        assert!(json.contains(SPARSE_FORMAT), "sparse tag on the wire");
        assert!(!json.contains("\"link\""), "no dense matrix on the wire");
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_users(), inst.n_users());
        assert_eq!(back.link_rate(ApId(0), UserId(0)), Some(mbps(3)));
    }

    #[test]
    fn legacy_dense_value_roundtrips() {
        let inst = two_ap_instance();
        let dense = inst.to_legacy_dense_value();
        let json = serde_json::to_string(&dense).unwrap();
        assert!(json.contains("\"link\""));
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_links(), inst.n_links());
        assert_eq!(
            serde_json::to_string(&back.to_legacy_dense_value()).unwrap(),
            json,
            "legacy emit is stable across a roundtrip"
        );
        // And the sparse forms agree too.
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&inst).unwrap()
        );
    }

    #[test]
    fn streaming_builder_matches_batch_builder() {
        let batch = two_ap_instance();
        let mut sb = StreamingInstanceBuilder::new(
            vec![SessionSpec { rate: mbps(3) }],
            vec![Load::ONE, Load::ONE],
            [mbps(3), mbps(4), mbps(5), mbps(6)],
            RatePolicy::MultiRate,
        )
        .unwrap();
        sb.reserve(2, 3);
        sb.push_user(SessionId(0), &[(ApId(0), mbps(3), SignalStrength(3000))])
            .unwrap();
        sb.push_user(
            SessionId(0),
            &[
                (ApId(0), mbps(6), SignalStrength(6000)),
                (ApId(1), mbps(5), SignalStrength(5000)),
            ],
        )
        .unwrap();
        assert_eq!(sb.n_users(), 2);
        assert_eq!(sb.n_links(), 3);
        let inst = sb.finish();
        assert_eq!(
            serde_json::to_string(&inst).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
        assert_eq!(
            inst.reachable_users(ApId(0)),
            batch.reachable_users(ApId(0))
        );
    }

    #[test]
    fn streaming_builder_rejects_bad_rows() {
        let mk = || {
            StreamingInstanceBuilder::new(
                vec![SessionSpec { rate: mbps(1) }],
                vec![Load::ONE, Load::ONE],
                [mbps(3), mbps(6)],
                RatePolicy::MultiRate,
            )
            .unwrap()
        };
        let mut sb = mk();
        assert!(matches!(
            sb.push_user(SessionId(7), &[]).unwrap_err(),
            InstanceError::UnknownSession(_)
        ));
        let mut sb = mk();
        assert!(matches!(
            sb.push_user(SessionId(0), &[(ApId(9), mbps(3), SignalStrength(1))])
                .unwrap_err(),
            InstanceError::UnknownAp(_)
        ));
        let mut sb = mk();
        assert!(matches!(
            sb.push_user(SessionId(0), &[(ApId(0), mbps(4), SignalStrength(1))])
                .unwrap_err(),
            InstanceError::UnsupportedLinkRate { .. }
        ));
        let mut sb = mk();
        assert!(matches!(
            sb.push_user(
                SessionId(0),
                &[
                    (ApId(1), mbps(3), SignalStrength(1)),
                    (ApId(0), mbps(3), SignalStrength(1)),
                ],
            )
            .unwrap_err(),
            InstanceError::UnsortedCandidates(_)
        ));
        // A failed push leaves the builder unchanged.
        let mut sb = mk();
        let _ = sb.push_user(SessionId(0), &[(ApId(9), mbps(3), SignalStrength(1))]);
        assert_eq!(sb.n_users(), 0);
        assert_eq!(sb.n_links(), 0);
    }

    #[test]
    fn from_csr_rejects_structural_violations() {
        let sess = vec![SessionSpec { rate: mbps(1) }];
        let users = vec![UserSpec {
            session: SessionId(0),
        }];
        let budgets = vec![Load::ONE];
        let ok = Instance::from_csr(
            sess.clone(),
            users.clone(),
            budgets.clone(),
            vec![0, 1],
            vec![(ApId(0), mbps(6))],
            vec![42],
            vec![mbps(6)],
            RatePolicy::MultiRate,
        );
        assert!(ok.is_ok());
        // Offsets not spanning the arena.
        assert!(Instance::from_csr(
            sess.clone(),
            users.clone(),
            budgets.clone(),
            vec![0, 2],
            vec![(ApId(0), mbps(6))],
            vec![42],
            vec![mbps(6)],
            RatePolicy::MultiRate,
        )
        .is_err());
        // Unknown AP in a row.
        assert!(Instance::from_csr(
            sess.clone(),
            users.clone(),
            budgets.clone(),
            vec![0, 1],
            vec![(ApId(3), mbps(6))],
            vec![42],
            vec![mbps(6)],
            RatePolicy::MultiRate,
        )
        .is_err());
        // Signal arena length mismatch.
        assert!(Instance::from_csr(
            sess,
            users,
            budgets,
            vec![0, 1],
            vec![(ApId(0), mbps(6))],
            vec![],
            vec![mbps(6)],
            RatePolicy::MultiRate,
        )
        .is_err());
    }
}
