//! Association state and exact multicast load accounting.
//!
//! The load model is Definition 1 of the paper: an AP multicasting session
//! `s` to member set `M` transmits at `min_{u∈M} r(a,u)` (multi-rate
//! policy) or at the basic rate (basic-only), contributing
//! `rate(s) / tx_rate` to the AP's load; an AP's load is the sum over the
//! sessions it serves, and the network's total load is the sum over APs.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::ids::{ApId, SessionId, UserId};
use crate::instance::Instance;
use crate::load::Load;
use crate::rate::Kbps;

/// A (partial) assignment of users to APs.
///
/// `None` means the user is unsatisfied — it receives no multicast service.
/// This type is plain data; all load computations take the [`Instance`]
/// explicitly (or use the incremental [`LoadLedger`]).
///
/// Storage is 4 bytes per user: a bare `u32` AP index with a sentinel for
/// "unsatisfied", half the footprint of the former `Vec<Option<ApId>>`
/// (whose niche-less pair padded to 8 bytes). The `Option<ApId>` API and
/// the serialized form (`null` for unsatisfied) are unchanged.
///
/// # Example
///
/// ```
/// use mcast_core::examples_paper::figure1_instance;
/// use mcast_core::{ApId, Association, Kbps, Load, UserId};
///
/// let inst = figure1_instance(Kbps::from_mbps(1));
/// let mut assoc = Association::empty(inst.n_users());
/// assoc.set(UserId(0), Some(ApId(0)));
/// assoc.set(UserId(2), Some(ApId(0)));
/// // a1 serves session s1 at min(3, 4) = 3 Mbps: load 1/3.
/// assert_eq!(assoc.ap_load(ApId(0), &inst), Load::from_ratio(1, 3));
/// assert_eq!(assoc.satisfied_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// `NO_AP` = unsatisfied, anything else = the AP's index.
    by_user: Vec<u32>,
}

/// Sentinel in [`Association::by_user`] for an unsatisfied user.
const NO_AP: u32 = u32::MAX;

// The wire shape predates the compact representation: an object with one
// `by_user` array of AP indices with `null` for unsatisfied — exactly what
// `Vec<Option<ApId>>` derived. Hand-written so the sentinel never leaks.
impl Serialize for Association {
    fn serialize_value(&self) -> Value {
        let entries = self
            .by_user
            .iter()
            .map(|&a| {
                if a == NO_AP {
                    Value::Null
                } else {
                    Value::Int(i128::from(a))
                }
            })
            .collect();
        Value::Object(vec![("by_user".into(), Value::Array(entries))])
    }
}

impl Deserialize for Association {
    fn deserialize_value(v: &Value) -> Result<Association, DeError> {
        let by_user = Vec::<Option<ApId>>::deserialize_value(
            v.get("by_user")
                .ok_or_else(|| DeError::custom("association: missing field `by_user`"))?,
        )?;
        Ok(Association::from_vec(by_user))
    }
}

/// Errors from [`Association::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssocError {
    /// A user is associated with an AP out of its radio range.
    OutOfRange {
        /// The user.
        user: UserId,
        /// The AP it is (wrongly) associated with.
        ap: ApId,
    },
    /// An AP's multicast load exceeds its budget.
    OverBudget {
        /// The overloaded AP.
        ap: ApId,
        /// Its computed load.
        load: Load,
        /// Its budget.
        budget: Load,
    },
    /// The association vector length does not match the instance.
    WrongSize {
        /// Length of the association vector.
        got: usize,
        /// Number of users in the instance.
        expected: usize,
    },
}

impl fmt::Display for AssocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssocError::OutOfRange { user, ap } => {
                write!(f, "user {user} associated with out-of-range AP {ap}")
            }
            AssocError::OverBudget { ap, load, budget } => {
                write!(f, "AP {ap} load {load} exceeds budget {budget}")
            }
            AssocError::WrongSize { got, expected } => {
                write!(f, "association covers {got} users, instance has {expected}")
            }
        }
    }
}

impl std::error::Error for AssocError {}

impl Association {
    /// An association with every user unsatisfied.
    pub fn empty(n_users: usize) -> Association {
        Association {
            by_user: vec![NO_AP; n_users],
        }
    }

    /// Builds from an explicit per-user vector.
    pub fn from_vec(by_user: Vec<Option<ApId>>) -> Association {
        Association {
            by_user: by_user
                .into_iter()
                .map(|a| a.map_or(NO_AP, |a| a.0))
                .collect(),
        }
    }

    /// The AP user `u` is associated with, if any.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn ap_of(&self, u: UserId) -> Option<ApId> {
        let a = self.by_user[u.index()];
        (a != NO_AP).then_some(ApId(a))
    }

    /// Associates `u` with `a` (or disassociates with `None`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set(&mut self, u: UserId, a: Option<ApId>) {
        self.by_user[u.index()] = a.map_or(NO_AP, |a| a.0);
    }

    /// Number of users the association covers (satisfied or not).
    pub fn len(&self) -> usize {
        self.by_user.len()
    }

    /// True when the association covers no users.
    pub fn is_empty(&self) -> bool {
        self.by_user.is_empty()
    }

    /// Number of users receiving service.
    pub fn satisfied_count(&self) -> usize {
        self.by_user.iter().filter(|&&a| a != NO_AP).count()
    }

    /// Number of users without service.
    pub fn unsatisfied_count(&self) -> usize {
        self.by_user.len() - self.satisfied_count()
    }

    /// Per-user view in `UserId` order (what `as_slice` was before the
    /// compact sentinel representation made a `&[Option<ApId>]` view
    /// impossible to hand out without allocating).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Option<ApId>> + '_ {
        self.by_user
            .iter()
            .map(|&a| (a != NO_AP).then_some(ApId(a)))
    }

    /// The per-user vector, materialized (for set keys and checkpoints).
    pub fn to_vec(&self) -> Vec<Option<ApId>> {
        self.iter().collect()
    }

    /// The members of AP `a` requesting session `s`.
    pub fn members_of(&self, a: ApId, s: SessionId, inst: &Instance) -> Vec<UserId> {
        self.by_user
            .iter()
            .enumerate()
            .filter(|(u, &ap)| ap == a.0 && inst.user_session(UserId(*u as u32)) == s)
            .map(|(u, _)| UserId(u as u32))
            .collect()
    }

    /// The rate AP `a` must use for session `s` — the minimum multicast
    /// rate over its members for `s` — or `None` if it serves no such member.
    pub fn ap_session_rate(&self, a: ApId, s: SessionId, inst: &Instance) -> Option<Kbps> {
        self.by_user
            .iter()
            .enumerate()
            .filter(|(u, &ap)| ap == a.0 && inst.user_session(UserId(*u as u32)) == s)
            .map(|(u, _)| {
                inst.multicast_rate_to(a, UserId(u as u32))
                    .expect("associated user must be in range")
            })
            .min()
    }

    /// The multicast load of AP `a` (Definition 1).
    pub fn ap_load(&self, a: ApId, inst: &Instance) -> Load {
        inst.sessions()
            .filter_map(|s| {
                self.ap_session_rate(a, s, inst)
                    .map(|tx| Load::per_transmission(inst.session_rate(s), tx))
            })
            .sum()
    }

    /// All AP loads, indexable by `ApId::index`.
    pub fn loads(&self, inst: &Instance) -> Vec<Load> {
        inst.aps().map(|a| self.ap_load(a, inst)).collect()
    }

    /// The total multicast load of the network.
    pub fn total_load(&self, inst: &Instance) -> Load {
        self.loads(inst).into_iter().sum()
    }

    /// The maximum AP load.
    pub fn max_load(&self, inst: &Instance) -> Load {
        self.loads(inst).into_iter().max().unwrap_or(Load::ZERO)
    }

    /// Checks structural validity and budget feasibility.
    ///
    /// # Errors
    ///
    /// See [`AssocError`].
    pub fn validate(&self, inst: &Instance) -> Result<(), AssocError> {
        if self.by_user.len() != inst.n_users() {
            return Err(AssocError::WrongSize {
                got: self.by_user.len(),
                expected: inst.n_users(),
            });
        }
        for (u, ap) in self.iter().enumerate() {
            if let Some(a) = ap {
                if inst.link_rate(a, UserId(u as u32)).is_none() {
                    return Err(AssocError::OutOfRange {
                        user: UserId(u as u32),
                        ap: a,
                    });
                }
            }
        }
        for a in inst.aps() {
            let load = self.ap_load(a, inst);
            if load > inst.budget(a) {
                return Err(AssocError::OverBudget {
                    ap: a,
                    load,
                    budget: inst.budget(a),
                });
            }
        }
        Ok(())
    }

    /// True if [`validate`](Association::validate) passes.
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        self.validate(inst).is_ok()
    }

    /// Drops assignments that are invalid for `inst` — users out of their
    /// AP's range become unsatisfied. Used to carry an association across
    /// mobility epochs: moved users that left coverage of their AP must
    /// re-associate.
    ///
    /// # Panics
    ///
    /// Panics if the association length does not match `inst`.
    pub fn restricted_to(&self, inst: &Instance) -> Association {
        assert_eq!(self.by_user.len(), inst.n_users(), "association size");
        Association {
            by_user: self
                .iter()
                .enumerate()
                .map(|(u, ap)| {
                    ap.filter(|&a| inst.link_rate(a, UserId(u as u32)).is_some())
                        .map_or(NO_AP, |a| a.0)
                })
                .collect(),
        }
    }
}

/// Incrementally maintained load state used by the distributed algorithms:
/// O(1) joins/leaves and load queries, plus *hypothetical* deltas ("what
/// would AP `a`'s load be if I joined / if I left?") that the paper's
/// users compute from AP query responses.
///
/// The per-(AP, session) member-rate multiset is a fixed-size count array
/// over the instance's discrete supported-rate set (~8 entries for
/// 802.11a) with a cached minimum-occupied index, so `ap_session_rate`,
/// `load_if_joined` and move application never walk members or tree
/// nodes. The original `BTreeMap`-multiset implementation is preserved as
/// [`reference::ReferenceLedger`](crate::reference::ReferenceLedger), and
/// `repro bench` plus the equivalence proptests pin the two to identical
/// outputs.
///
/// # Example
///
/// ```
/// use mcast_core::examples_paper::figure1_instance;
/// use mcast_core::{ApId, Kbps, Load, LoadLedger, UserId};
///
/// let inst = figure1_instance(Kbps::from_mbps(1));
/// let mut ledger = LoadLedger::fresh(&inst);
/// // "What would a1's load be if u3 joined?" — without joining.
/// assert_eq!(
///     ledger.load_if_joined(UserId(2), ApId(0)),
///     Some(Load::from_ratio(1, 4))
/// );
/// ledger.join(UserId(2), ApId(0));
/// assert_eq!(ledger.ap_load(ApId(0)), Load::from_ratio(1, 4));
/// ```
#[derive(Debug, Clone)]
pub struct LoadLedger<'a> {
    inst: &'a Instance,
    assoc: Association,
    /// Flattened member counts: `counts[slot(a, s) * n_rates + rate_idx]`
    /// is the number of members of session `s` on AP `a` whose multicast
    /// rate is `supported_rates()[rate_idx]`.
    counts: Vec<u32>,
    /// Per (AP, session): index of the minimum occupied rate in the
    /// supported-rate set, or [`NO_RATE`] when the slot has no members.
    min_rate: Vec<u32>,
    ap_load: Vec<Load>,
    n_rates: usize,
}

/// Sentinel for an empty (AP, session) slot in [`LoadLedger::min_rate`].
const NO_RATE: u32 = u32::MAX;

impl<'a> LoadLedger<'a> {
    /// Starts from an existing association.
    ///
    /// # Panics
    ///
    /// Panics if the association is structurally invalid for `inst`
    /// (wrong size or out-of-range assignment). Budgets are *not* checked —
    /// ledgers are also used to explore infeasible intermediate states.
    pub fn new(inst: &'a Instance, assoc: Association) -> LoadLedger<'a> {
        assert_eq!(assoc.len(), inst.n_users(), "association size");
        let n_rates = inst.supported_rates().len();
        let slots = inst.n_aps() * inst.n_sessions();
        let mut ledger = LoadLedger {
            inst,
            assoc: Association::empty(inst.n_users()),
            counts: vec![0; slots * n_rates],
            min_rate: vec![NO_RATE; slots],
            ap_load: vec![Load::ZERO; inst.n_aps()],
            n_rates,
        };
        for (u, ap) in assoc.iter().enumerate() {
            if let Some(a) = ap {
                ledger.join(UserId(u as u32), a);
            }
        }
        ledger
    }

    /// Starts with every user unsatisfied.
    pub fn fresh(inst: &'a Instance) -> LoadLedger<'a> {
        LoadLedger::new(inst, Association::empty(inst.n_users()))
    }

    fn slot(&self, a: ApId, s: SessionId) -> usize {
        a.index() * self.inst.n_sessions() + s.index()
    }

    /// Index of `rate` in the instance's discrete supported-rate set.
    fn rate_idx(&self, rate: Kbps) -> usize {
        self.inst
            .supported_rates()
            .binary_search(&rate)
            .expect("multicast rate is in the supported set")
    }

    /// The load AP `a` currently carries.
    pub fn ap_load(&self, a: ApId) -> Load {
        self.ap_load[a.index()]
    }

    /// The AP user `u` is currently associated with.
    pub fn ap_of(&self, u: UserId) -> Option<ApId> {
        self.assoc.ap_of(u)
    }

    /// The current association (cheap clone of plain data).
    pub fn association(&self) -> &Association {
        &self.assoc
    }

    /// Consumes the ledger, returning the association.
    pub fn into_association(self) -> Association {
        self.assoc
    }

    /// Total load over all APs.
    pub fn total_load(&self) -> Load {
        self.ap_load.iter().copied().sum()
    }

    /// Maximum AP load.
    pub fn max_load(&self) -> Load {
        self.ap_load.iter().copied().max().unwrap_or(Load::ZERO)
    }

    /// The transmission rate AP `a` uses for session `s`, if it serves it.
    pub fn ap_session_rate(&self, a: ApId, s: SessionId) -> Option<Kbps> {
        let m = self.min_rate[self.slot(a, s)];
        (m != NO_RATE).then(|| self.inst.supported_rates()[m as usize])
    }

    /// The load AP `a` would have if user `u` joined it (without joining).
    ///
    /// Returns `None` if `u` is out of `a`'s range.
    pub fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u)?;
        let stream = self.inst.session_rate(s);
        let cur = self.ap_session_rate(a, s);
        let new_tx = match cur {
            Some(tx) => tx.min(u_rate),
            None => u_rate,
        };
        let old_part = cur.map_or(Load::ZERO, |tx| Load::per_transmission(stream, tx));
        Some(self.ap_load[a.index()] - old_part + Load::per_transmission(stream, new_tx))
    }

    /// The load user `u`'s current AP would have if `u` left it
    /// (the "load of `a` if it leaves AP `a`" the paper's users query).
    ///
    /// Returns `None` if `u` is not associated.
    pub fn load_if_left(&self, u: UserId) -> Option<Load> {
        let a = self.assoc.ap_of(u)?;
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("associated user in range");
        let slot = self.slot(a, s);
        let base = slot * self.n_rates;
        let min_idx = self.min_rate[slot] as usize;
        let cur_tx = self.inst.supported_rates()[min_idx];
        let old_part = Load::per_transmission(stream, cur_tx);
        // Remaining members after u leaves: remove one instance of u_rate.
        let u_idx = self.rate_idx(u_rate);
        let new_tx = if self.counts[base + u_idx] > 1 {
            Some(cur_tx) // another member shares u's rate; min unchanged
        } else if u_idx == min_idx {
            // u was the unique slowest; the next occupied rate takes over.
            self.counts[base + u_idx + 1..base + self.n_rates]
                .iter()
                .position(|&c| c > 0)
                .map(|off| self.inst.supported_rates()[u_idx + 1 + off])
        } else {
            Some(cur_tx) // a slower member than u pins the rate
        };
        let new_part = new_tx.map_or(Load::ZERO, |tx| Load::per_transmission(stream, tx));
        Some(self.ap_load[a.index()] - old_part + new_part)
    }

    /// Associates `u` with `a`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is already associated or out of `a`'s range.
    pub fn join(&mut self, u: UserId, a: ApId) {
        assert!(self.assoc.ap_of(u).is_none(), "user {u} already associated");
        let new_load = self
            .load_if_joined(u, a)
            .unwrap_or_else(|| panic!("user {u} out of range of AP {a}"));
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u).expect("checked in range");
        let slot = self.slot(a, s);
        let u_idx = self.rate_idx(u_rate);
        self.counts[slot * self.n_rates + u_idx] += 1;
        if self.min_rate[slot] == NO_RATE || (u_idx as u32) < self.min_rate[slot] {
            self.min_rate[slot] = u_idx as u32;
        }
        self.ap_load[a.index()] = new_load;
        self.assoc.set(u, Some(a));
    }

    /// Disassociates `u` from its current AP.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not associated.
    pub fn leave(&mut self, u: UserId) {
        let new_load = self
            .load_if_left(u)
            .unwrap_or_else(|| panic!("user {u} is not associated"));
        let a = self.assoc.ap_of(u).expect("checked associated");
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u).expect("in range");
        let slot = self.slot(a, s);
        let base = slot * self.n_rates;
        let u_idx = self.rate_idx(u_rate);
        self.counts[base + u_idx] -= 1;
        if self.counts[base + u_idx] == 0 && self.min_rate[slot] == u_idx as u32 {
            // The minimum emptied: advance to the next occupied rate.
            self.min_rate[slot] = self.counts[base + u_idx + 1..base + self.n_rates]
                .iter()
                .position(|&c| c > 0)
                .map_or(NO_RATE, |off| (u_idx + 1 + off) as u32);
        }
        self.ap_load[a.index()] = new_load;
        self.assoc.set(u, None);
    }

    /// Moves `u` to `a` (leaving its current AP first, if any).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of `a`'s range.
    pub fn reassociate(&mut self, u: UserId, a: ApId) {
        if self.assoc.ap_of(u) == Some(a) {
            return;
        }
        if self.assoc.ap_of(u).is_some() {
            self.leave(u);
        }
        self.join(u, a);
    }

    /// Forcibly disassociates every user currently served by `a`
    /// (modelling an AP crash), returning the evicted users in ascending
    /// id order.
    ///
    /// Equivalent to each member leaving in turn, so every ledger
    /// invariant (per-session rate multisets, cached loads) holds
    /// afterwards and `ap_load(a)` is zero.
    pub fn evict_ap(&mut self, a: ApId) -> Vec<UserId> {
        let evicted: Vec<UserId> = self
            .assoc
            .iter()
            .enumerate()
            .filter_map(|(i, ap)| (ap == Some(a)).then_some(UserId(i as u32)))
            .collect();
        for &u in &evicted {
            self.leave(u);
        }
        debug_assert_eq!(self.ap_load(a), Load::ZERO);
        evicted
    }

    /// Verifies the cached loads and per-session rate multisets against a
    /// from-scratch recomputation from the association.
    ///
    /// A no-op in the happy path; fault-injection code calls it after
    /// every forced disassociation to assert the ledger never drifts.
    ///
    /// # Panics
    ///
    /// Panics if any cached value diverges from the recomputation.
    pub fn assert_consistent(&self) {
        for a in self.inst.aps() {
            assert_eq!(
                self.ap_load(a),
                self.assoc.ap_load(a, self.inst),
                "cached load of {a} diverged from its association"
            );
            for s in self.inst.sessions() {
                assert_eq!(
                    self.ap_session_rate(a, s),
                    self.assoc.ap_session_rate(a, s, self.inst),
                    "cached rate of ({a}, {s}) diverged from its association"
                );
            }
        }
    }

    /// The instance this ledger is built over.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure1_instance;
    use crate::instance::InstanceBuilder;

    fn mbps(m: u32) -> Kbps {
        Kbps::from_mbps(m)
    }

    /// §3.2 MLA example: sessions at 1 Mbps, everyone on a1 → 1/3 + 1/4.
    #[test]
    fn figure1_all_on_a1_total_load() {
        let inst = figure1_instance(mbps(1));
        let mut assoc = Association::empty(5);
        for u in 0..5 {
            assoc.set(UserId(u), Some(ApId(0)));
        }
        assert_eq!(
            assoc.ap_load(ApId(0), &inst),
            Load::from_ratio(1, 3) + Load::from_ratio(1, 4)
        );
        assert_eq!(assoc.total_load(&inst), Load::from_ratio(7, 12));
        assert_eq!(assoc.max_load(&inst), Load::from_ratio(7, 12));
        assert!(assoc.is_feasible(&inst));
    }

    /// §3.2 BLA example: u1,u2,u3 on a1; u4,u5 on a2 → loads 1/2 and 1/3.
    #[test]
    fn figure1_bla_optimal_loads() {
        let inst = figure1_instance(mbps(1));
        let assoc = Association::from_vec(vec![
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(1)),
            Some(ApId(1)),
        ]);
        let loads = assoc.loads(&inst);
        assert_eq!(loads[0], Load::from_ratio(1, 2));
        assert_eq!(loads[1], Load::from_ratio(1, 3));
        assert_eq!(assoc.max_load(&inst), Load::from_ratio(1, 2));
    }

    /// §3.2 MNU example: 3 Mbps sessions; u2,u4,u5 on a1, u3 on a2.
    #[test]
    fn figure1_mnu_optimal_loads() {
        let inst = figure1_instance(mbps(3));
        let assoc = Association::from_vec(vec![
            None,
            Some(ApId(0)),
            Some(ApId(1)),
            Some(ApId(0)),
            Some(ApId(0)),
        ]);
        let loads = assoc.loads(&inst);
        assert_eq!(loads[0], Load::from_ratio(3, 4));
        assert_eq!(loads[1], Load::from_ratio(3, 5));
        assert_eq!(assoc.satisfied_count(), 4);
        assert_eq!(assoc.unsatisfied_count(), 1);
        assert!(assoc.is_feasible(&inst));
    }

    /// §3.2: serving both u1 and u2 from a1 at 3 Mbps is infeasible.
    #[test]
    fn figure1_mnu_infeasible_pair() {
        let inst = figure1_instance(mbps(3));
        let mut assoc = Association::empty(5);
        assoc.set(UserId(0), Some(ApId(0)));
        assoc.set(UserId(1), Some(ApId(0)));
        // Load = 3/3 + 3/6 = 3/2 > 1.
        assert_eq!(assoc.ap_load(ApId(0), &inst), Load::from_ratio(3, 2));
        assert!(matches!(
            assoc.validate(&inst).unwrap_err(),
            AssocError::OverBudget { ap: ApId(0), .. }
        ));
    }

    #[test]
    fn validate_catches_out_of_range_and_size() {
        let inst = figure1_instance(mbps(1));
        let mut assoc = Association::empty(5);
        assoc.set(UserId(0), Some(ApId(1))); // u1 unreachable from a2
        assert!(matches!(
            assoc.validate(&inst).unwrap_err(),
            AssocError::OutOfRange {
                user: UserId(0),
                ap: ApId(1)
            }
        ));
        let short = Association::empty(3);
        assert!(matches!(
            short.validate(&inst).unwrap_err(),
            AssocError::WrongSize {
                got: 3,
                expected: 5
            }
        ));
    }

    #[test]
    fn ledger_matches_batch_computation() {
        let inst = figure1_instance(mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(UserId(0), ApId(0));
        ledger.join(UserId(1), ApId(0));
        ledger.join(UserId(2), ApId(0));
        ledger.join(UserId(3), ApId(1));
        ledger.join(UserId(4), ApId(1));
        let assoc = ledger.association().clone();
        assert_eq!(ledger.ap_load(ApId(0)), assoc.ap_load(ApId(0), &inst));
        assert_eq!(ledger.ap_load(ApId(1)), assoc.ap_load(ApId(1), &inst));
        assert_eq!(ledger.total_load(), assoc.total_load(&inst));
        assert_eq!(ledger.max_load(), assoc.max_load(&inst));
    }

    #[test]
    fn ledger_hypothetical_join_and_leave() {
        let inst = figure1_instance(mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        // u3 (rate 4 from a1) joins a1: load 1/4.
        assert_eq!(
            ledger.load_if_joined(UserId(2), ApId(0)),
            Some(Load::from_ratio(1, 4))
        );
        ledger.join(UserId(2), ApId(0));
        // u1 (rate 3) would drag the session rate down to 3: 1/3.
        assert_eq!(
            ledger.load_if_joined(UserId(0), ApId(0)),
            Some(Load::from_ratio(1, 3))
        );
        ledger.join(UserId(0), ApId(0));
        assert_eq!(ledger.ap_load(ApId(0)), Load::from_ratio(1, 3));
        // If u1 left, rate returns to 4.
        assert_eq!(ledger.load_if_left(UserId(0)), Some(Load::from_ratio(1, 4)));
        // If u3 left instead, u1 still pins rate 3: load unchanged.
        assert_eq!(ledger.load_if_left(UserId(2)), Some(Load::from_ratio(1, 3)));
        // Out-of-range join is None.
        assert_eq!(ledger.load_if_joined(UserId(0), ApId(1)), None);
        // Actually leave and verify.
        ledger.leave(UserId(0));
        assert_eq!(ledger.ap_load(ApId(0)), Load::from_ratio(1, 4));
        assert_eq!(ledger.ap_of(UserId(0)), None);
    }

    #[test]
    fn ledger_duplicate_rates_leave_keeps_min() {
        // Two members at the same (minimum) rate: one leaving must not
        // change the transmission rate.
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(6)]);
        let s = b.add_session(mbps(1));
        let a = b.add_ap(Load::ONE);
        let u0 = b.add_user(s);
        let u1 = b.add_user(s);
        let u2 = b.add_user(s);
        b.link(a, u0, mbps(3)).unwrap();
        b.link(a, u1, mbps(3)).unwrap();
        b.link(a, u2, mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(u0, a);
        ledger.join(u1, a);
        ledger.join(u2, a);
        assert_eq!(ledger.ap_session_rate(a, s), Some(mbps(3)));
        assert_eq!(ledger.load_if_left(u0), Some(Load::from_ratio(1, 3)));
        ledger.leave(u0);
        assert_eq!(ledger.ap_session_rate(a, s), Some(mbps(3)));
        ledger.leave(u1);
        assert_eq!(ledger.ap_session_rate(a, s), Some(mbps(6)));
        ledger.leave(u2);
        assert_eq!(ledger.ap_session_rate(a, s), None);
        assert_eq!(ledger.ap_load(a), Load::ZERO);
    }

    #[test]
    fn reassociate_moves_user() {
        let inst = figure1_instance(mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(UserId(3), ApId(0));
        ledger.reassociate(UserId(3), ApId(1));
        assert_eq!(ledger.ap_of(UserId(3)), Some(ApId(1)));
        assert_eq!(ledger.ap_load(ApId(0)), Load::ZERO);
        assert_eq!(ledger.ap_load(ApId(1)), Load::from_ratio(1, 5));
        // Reassociating to the same AP is a no-op.
        ledger.reassociate(UserId(3), ApId(1));
        assert_eq!(ledger.ap_load(ApId(1)), Load::from_ratio(1, 5));
    }

    #[test]
    fn restricted_to_drops_out_of_range_assignments() {
        let inst = figure1_instance(mbps(1));
        // u1 on a2 is invalid (no link); u3 on a2 is fine.
        let assoc = Association::from_vec(vec![
            Some(ApId(1)),
            Some(ApId(0)),
            Some(ApId(1)),
            None,
            Some(ApId(0)),
        ]);
        let fixed = assoc.restricted_to(&inst);
        assert_eq!(fixed.ap_of(UserId(0)), None);
        assert_eq!(fixed.ap_of(UserId(1)), Some(ApId(0)));
        assert_eq!(fixed.ap_of(UserId(2)), Some(ApId(1)));
        assert_eq!(fixed.ap_of(UserId(3)), None);
        assert!(fixed.validate(&inst).is_ok());
    }

    #[test]
    #[should_panic(expected = "already associated")]
    fn double_join_panics() {
        let inst = figure1_instance(mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(UserId(0), ApId(0));
        ledger.join(UserId(0), ApId(0));
    }
}
