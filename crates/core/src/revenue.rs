//! The revenue models motivating the three objectives (paper §3.2).
//!
//! The paper justifies each objective with a service-provider revenue
//! model; this module makes those models computable so the evaluation can
//! check the fit empirically (the `revenue` experiment):
//!
//! * **Pay-per-view** (MNU): unicast is a flat monthly charge; multicast
//!   is billed per served stream-hour — revenue is proportional to the
//!   number of satisfied users.
//! * **Concave unicast** (BLA): one multicast flow is bundled in the
//!   monthly charge; unicast revenue grows with available bandwidth with
//!   *diminishing returns* (the paper calls the function "convex" while
//!   describing it as "marginally decreasing with increasing bandwidth" —
//!   i.e. concave in the modern convention, which is what makes
//!   uniformly-distributed resources optimal per its Kelly citation).
//!   Balancing the multicast load maximizes the sum of per-AP concave
//!   returns on leftover airtime.
//! * **Per-byte unicast** (MLA): unicast is billed per byte under
//!   saturated demand — revenue is proportional to total leftover
//!   airtime, i.e. maximized by minimizing the total multicast load.
//!
//! All revenues are reported in abstract units via `f64` (they are
//! reporting-side quantities; exactness lives in [`Load`]).

use crate::assoc::Association;
use crate::instance::Instance;
use crate::load::Load;

/// Pay-per-view revenue: `rate_per_user` per satisfied multicast user.
///
/// # Example
///
/// ```
/// use mcast_core::examples_paper::figure1_instance;
/// use mcast_core::revenue::pay_per_view;
/// use mcast_core::{solve_mnu, Kbps};
///
/// let inst = figure1_instance(Kbps::from_mbps(3));
/// let sol = solve_mnu(&inst); // serves 3 users
/// assert_eq!(pay_per_view(&sol.association, 2.5), 7.5);
/// ```
pub fn pay_per_view(assoc: &Association, rate_per_user: f64) -> f64 {
    assoc.satisfied_count() as f64 * rate_per_user
}

/// Concave unicast revenue: `Σ_a √(max(0, 1 − load_a))` — diminishing
/// returns on each AP's leftover airtime. Maximized (for a fixed total
/// multicast load) when the load is spread evenly; BLA's target.
pub fn concave_unicast(assoc: &Association, inst: &Instance) -> f64 {
    assoc
        .loads(inst)
        .into_iter()
        .map(|l| leftover(l).sqrt())
        .sum()
}

/// Per-byte unicast revenue: `Σ_a max(0, 1 − load_a)` — total leftover
/// airtime, linear in the total multicast load; MLA's target.
pub fn per_byte_unicast(assoc: &Association, inst: &Instance) -> f64 {
    assoc.loads(inst).into_iter().map(leftover).sum()
}

/// Jain's fairness index of per-AP leftover airtime:
/// `(Σx)² / (n · Σx²)` — 1.0 is perfectly even, `1/n` maximally skewed.
/// Returns 1.0 for an empty network or all-zero leftovers.
pub fn jain_fairness(assoc: &Association, inst: &Instance) -> f64 {
    let xs: Vec<f64> = assoc.loads(inst).into_iter().map(leftover).collect();
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sq)
}

fn leftover(load: Load) -> f64 {
    (1.0 - load.as_f64()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure1_instance;
    use crate::ids::ApId;
    use crate::rate::Kbps;

    fn inst() -> Instance {
        figure1_instance(Kbps::from_mbps(1))
    }

    fn all_on_a1() -> Association {
        Association::from_vec(vec![Some(ApId(0)); 5])
    }

    fn balanced() -> Association {
        Association::from_vec(vec![
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(1)),
            Some(ApId(1)),
        ])
    }

    #[test]
    fn pay_per_view_counts_satisfied() {
        let inst = inst();
        let _ = &inst;
        assert_eq!(pay_per_view(&all_on_a1(), 2.0), 10.0);
        let mut partial = all_on_a1();
        partial.set(crate::ids::UserId(0), None);
        assert_eq!(pay_per_view(&partial, 2.0), 8.0);
    }

    #[test]
    fn concave_rewards_balancing() {
        let inst = inst();
        // Balanced (1/2, 1/3) vs concentrated (7/12, 0): concentrated has
        // *less* total load yet the concave model can still prefer
        // balance when loads are comparable; here we simply check the
        // exact values.
        let bal = concave_unicast(&balanced(), &inst);
        let conc = concave_unicast(&all_on_a1(), &inst);
        let expect_bal = (0.5f64).sqrt() + (2.0f64 / 3.0).sqrt();
        let expect_conc = (1.0f64 - 7.0 / 12.0).sqrt() + 1.0;
        assert!((bal - expect_bal).abs() < 1e-12);
        assert!((conc - expect_conc).abs() < 1e-12);
    }

    #[test]
    fn per_byte_tracks_total_load_exactly() {
        let inst = inst();
        // 2 APs: revenue = 2 − total load.
        let v = per_byte_unicast(&all_on_a1(), &inst);
        assert!((v - (2.0 - 7.0 / 12.0)).abs() < 1e-12);
        let v2 = per_byte_unicast(&balanced(), &inst);
        assert!((v2 - (2.0 - 0.5 - 1.0 / 3.0)).abs() < 1e-12);
        // Lower total load ⇒ strictly more per-byte revenue.
        assert!(v > v2);
    }

    #[test]
    fn jain_prefers_even_leftovers() {
        let inst = inst();
        let j_bal = jain_fairness(&balanced(), &inst);
        let j_conc = jain_fairness(&all_on_a1(), &inst);
        assert!(j_bal > j_conc, "balanced {j_bal} vs concentrated {j_conc}");
        assert!(j_bal <= 1.0 + 1e-12 && j_conc >= 0.5 - 1e-12);
        // Empty association: leftovers all 1 -> perfectly fair.
        let empty = Association::empty(5);
        assert!((jain_fairness(&empty, &inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overloaded_aps_clamp_to_zero_leftover() {
        // Loads above 1 contribute zero leftover, not negative revenue.
        let inst3 = figure1_instance(Kbps::from_mbps(3));
        let mut assoc = Association::empty(5);
        assoc.set(crate::ids::UserId(0), Some(ApId(0)));
        assoc.set(crate::ids::UserId(1), Some(ApId(0))); // load 3/2 > 1
        assert_eq!(per_byte_unicast(&assoc, &inst3), 1.0); // only a2's 1.0
        assert_eq!(concave_unicast(&assoc, &inst3), 1.0);
    }
}
