//! Reductions from the WLAN association problems to covering problems
//! (paper Theorems 1, 3 and 5).
//!
//! All three objectives share one construction: the ground set is the user
//! set; for every AP `a`, session `s` and usable multicast rate `r`, there
//! is a set containing every user that requests `s` and can decode rate `r`
//! from `a`, with cost `rate(s) / r`; the sets of AP `a` form group `a`.
//! MNU adds per-group budgets (the AP load limits); BLA minimizes the
//! maximum group cost; MLA ignores groups and minimizes total cost.

use mcast_covering::{Cover, SetId, SetSystem, SetSystemBuilder};
use serde::{Deserialize, Serialize};

use crate::assoc::Association;
use crate::ids::{ApId, SessionId, UserId};
use crate::instance::Instance;
use crate::load::Load;
use crate::rate::Kbps;

/// What a covering set means in WLAN terms: AP `ap` multicasts session
/// `session` at transmission rate `tx_rate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Choice {
    /// The transmitting AP (also the group of the set).
    pub ap: ApId,
    /// The multicast session transmitted.
    pub session: SessionId,
    /// The transmission rate used.
    pub tx_rate: Kbps,
}

/// The covering instance produced from a WLAN [`Instance`], with the
/// mapping back from set ids to [`Choice`]s.
#[derive(Debug, Clone)]
pub struct Reduction {
    system: SetSystem<Load>,
    choices: Vec<Choice>,
    budgets: Vec<Load>,
}

impl Reduction {
    /// Builds the covering instance (Theorem 1/3/5 construction).
    ///
    /// Duplicate sets — e.g. two rates reaching exactly the same members —
    /// are pruned, keeping the cheaper (higher-rate) one; this never
    /// changes what any solver can achieve.
    pub fn build(inst: &Instance) -> Reduction {
        let mut builder = SetSystemBuilder::<Load>::new(inst.n_users());
        builder.ensure_groups(inst.n_aps());
        let mut choices: Vec<Choice> = Vec::new();

        // Pre-group users by session for membership scans.
        let mut by_session: Vec<Vec<UserId>> = vec![Vec::new(); inst.n_sessions()];
        for u in inst.users() {
            by_session[inst.user_session(u).index()].push(u);
        }

        for a in inst.aps() {
            for s in inst.sessions() {
                let stream = inst.session_rate(s);
                let mut last_members: Option<Vec<u32>> = None;
                // Ascending rates: members shrink as the rate climbs, cost
                // falls. Identical member sets at adjacent rates keep only
                // the cheaper (later) one.
                let mut pending: Vec<(Vec<u32>, Kbps)> = Vec::new();
                for &r in inst.multicast_rates() {
                    let members: Vec<u32> = by_session[s.index()]
                        .iter()
                        .filter(|&&u| inst.multicast_rate_to(a, u).is_some_and(|link| link >= r))
                        .map(|u| u.0)
                        .collect();
                    if members.is_empty() {
                        continue;
                    }
                    if last_members.as_ref() == Some(&members) {
                        // Same coverage, strictly cheaper: replace.
                        pending.pop();
                    }
                    last_members = Some(members.clone());
                    pending.push((members, r));
                }
                for (members, r) in pending {
                    builder
                        .push_set(members, Load::per_transmission(stream, r), a.0)
                        .expect("reduction sets are valid by construction");
                    choices.push(Choice {
                        ap: a,
                        session: s,
                        tx_rate: r,
                    });
                }
            }
        }

        // `push_set` order and `choices` stay parallel; the builder assigns
        // ids in push order and `prune_duplicates` is *not* called (the
        // adjacent-rate dedup above already handles the only duplicates the
        // construction can produce within a group).
        let system = builder.build().expect("valid construction");
        debug_assert_eq!(system.n_sets(), choices.len());

        let budgets = inst.aps().map(|a| inst.budget(a)).collect();
        Reduction {
            system,
            choices,
            budgets,
        }
    }

    /// The covering instance.
    pub fn system(&self) -> &SetSystem<Load> {
        &self.system
    }

    /// The WLAN meaning of set `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn choice(&self, id: SetId) -> Choice {
        self.choices[id.0 as usize]
    }

    /// Per-group (= per-AP) budgets for the MNU instance.
    pub fn budgets(&self) -> &[Load] {
        &self.budgets
    }

    /// Users no AP can reach — the instance is uncoverable if non-empty.
    pub fn uncoverable_users(&self) -> Vec<UserId> {
        self.system
            .uncoverable_elements()
            .into_iter()
            .map(|e| UserId(e.0))
            .collect()
    }

    /// Translates a covering solution into an association: each covered
    /// element (user) associates with the AP of the set that covered it.
    ///
    /// The *realized* load of that association (minimum member rate per
    /// session, Definition 1) is never more than the covering-model cost:
    /// if two sets for the same (AP, session) were chosen, the AP really
    /// transmits once, at the lower rate.
    pub fn to_association(&self, cover: &Cover<Load>) -> Association {
        let mut assoc = Association::empty(self.system.n_elements());
        for (e, assigned) in cover.assignment().iter().enumerate() {
            if let Some(sid) = assigned {
                assoc.set(UserId(e as u32), Some(self.choice(*sid).ap));
            }
        }
        assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure1_instance;
    use crate::instance::InstanceBuilder;
    use crate::rate::RatePolicy;
    use mcast_covering::{ElementId, GroupId};

    fn mbps(m: u32) -> Kbps {
        Kbps::from_mbps(m)
    }

    /// The reduction of Figure 1 at 1 Mbps must be exactly the paper's
    /// Figure 5 / Figure 7 set system (7 sets, after deduplication).
    #[test]
    fn figure1_reduction_matches_figure5() {
        let inst = figure1_instance(mbps(1));
        let red = Reduction::build(&inst);
        let sys = red.system();
        assert_eq!(sys.n_elements(), 5);
        assert_eq!(sys.n_groups(), 2);
        assert_eq!(sys.n_sets(), 7);

        // Collect (ap, members, cost) triples.
        let mut triples: Vec<(u32, Vec<u32>, Load)> = (0..sys.n_sets())
            .map(|i| {
                let set = sys.set(SetId(i as u32));
                (
                    set.group().0,
                    set.members().iter().map(|e| e.0).collect(),
                    *set.cost(),
                )
            })
            .collect();
        triples.sort();
        let expected: Vec<(u32, Vec<u32>, Load)> = vec![
            // a1: s1 @4 {u3}, s1 @3 {u1,u3}, s2 @6 {u2}, s2 @4 {u2,u4,u5}
            (0, vec![0, 2], Load::from_ratio(1, 3)),
            (0, vec![1], Load::from_ratio(1, 6)),
            (0, vec![1, 3, 4], Load::from_ratio(1, 4)),
            (0, vec![2], Load::from_ratio(1, 4)),
            // a2: s1 @5 {u3}, s2 @5 {u4}, s2 @3 {u4,u5}
            (1, vec![2], Load::from_ratio(1, 5)),
            (1, vec![3], Load::from_ratio(1, 5)),
            (1, vec![3, 4], Load::from_ratio(1, 3)),
        ];
        let mut expected = expected;
        expected.sort();
        assert_eq!(triples, expected);
    }

    /// With 3 Mbps sessions the same sets appear with tripled costs
    /// (Figure 2), and the budgets are the AP load limits.
    #[test]
    fn figure1_reduction_at_3mbps_matches_figure2() {
        let inst = figure1_instance(mbps(3));
        let red = Reduction::build(&inst);
        assert_eq!(red.system().n_sets(), 7);
        assert_eq!(red.budgets(), &[Load::ONE, Load::ONE]);
        // The (a1, s2, @4) set now costs 3/4.
        let found = (0..red.system().n_sets()).any(|i| {
            let id = SetId(i as u32);
            let set = red.system().set(id);
            let c = red.choice(id);
            c.ap == ApId(0)
                && c.tx_rate == mbps(4)
                && set.members() == [ElementId(1), ElementId(3), ElementId(4)]
                && *set.cost() == Load::from_ratio(3, 4)
        });
        assert!(found, "expected the S4 set of Figure 2");
    }

    #[test]
    fn choices_align_with_groups() {
        let inst = figure1_instance(mbps(1));
        let red = Reduction::build(&inst);
        for i in 0..red.system().n_sets() {
            let id = SetId(i as u32);
            let choice = red.choice(id);
            assert_eq!(GroupId(choice.ap.0), red.system().set(id).group());
            // Cost is rate(session)/tx_rate.
            assert_eq!(
                *red.system().set(id).cost(),
                Load::per_transmission(inst.session_rate(choice.session), choice.tx_rate)
            );
            // Every member can decode tx_rate from the AP.
            for e in red.system().set(id).members() {
                let u = UserId(e.0);
                assert_eq!(inst.user_session(u), choice.session);
                assert!(inst.multicast_rate_to(choice.ap, u).unwrap() >= choice.tx_rate);
            }
        }
    }

    #[test]
    fn basic_only_policy_collapses_to_one_set_per_ap_session() {
        // The Figure 1 WLAN rebuilt with BasicOnly: every (AP, session)
        // gets exactly one set at the basic rate (3 Mbps) containing all
        // reachable requesters.
        let mut b = InstanceBuilder::new();
        b.supported_rates([mbps(3), mbps(4), mbps(5), mbps(6)]);
        b.rate_policy(RatePolicy::BasicOnly);
        let s1 = b.add_session(mbps(1));
        let s2 = b.add_session(mbps(1));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let users = [
            (s1, vec![(a1, 3)]),
            (s2, vec![(a1, 6)]),
            (s1, vec![(a1, 4), (a2, 5)]),
            (s2, vec![(a1, 4), (a2, 5)]),
            (s2, vec![(a1, 4), (a2, 3)]),
        ];
        for (s, links) in users {
            let u = b.add_user(s);
            for (a, r) in links {
                b.link(a, u, mbps(r)).unwrap();
            }
        }
        let inst = b.build().unwrap();
        let red = Reduction::build(&inst);
        // a1 serves s1 and s2; a2 serves s1 and s2 => 4 sets, all at 3 Mbps.
        assert_eq!(red.system().n_sets(), 4);
        for i in 0..4 {
            assert_eq!(red.choice(SetId(i)).tx_rate, mbps(3));
            assert_eq!(*red.system().set(SetId(i)).cost(), Load::from_ratio(1, 3));
        }
    }

    #[test]
    fn uncoverable_user_reported() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(mbps(1));
        b.add_ap(Load::ONE);
        let _lonely = b.add_user(s);
        let inst = b.build().unwrap();
        let red = Reduction::build(&inst);
        assert_eq!(red.uncoverable_users(), vec![UserId(0)]);
    }
}
