//! Strongly typed identifiers for the WLAN model.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies an access point (index into the instance's AP list).
    ApId,
    "ap"
);
id_type!(
    /// Identifies a user (index into the instance's user list).
    UserId,
    "u"
);
id_type!(
    /// Identifies a multicast session (index into the session list).
    SessionId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(ApId(3).to_string(), "ap3");
        assert_eq!(UserId(0).to_string(), "u0");
        assert_eq!(SessionId(7).to_string(), "s7");
        assert_eq!(ApId(3).index(), 3);
        assert_eq!(ApId::from(5), ApId(5));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(UserId(1) < UserId(2));
        let mut v = vec![ApId(2), ApId(0), ApId(1)];
        v.sort();
        assert_eq!(v, vec![ApId(0), ApId(1), ApId(2)]);
    }
}
