//! Dual association — independent unicast and multicast APs per user
//! (paper §3.1, after Lee, Chandrasekaran & Sinha's multi-association).
//!
//! When a user is both a unicast and a multicast consumer, the paper
//! adopts the framework where "each user independently selects one AP for
//! unicast and another one for multicast services". This module combines
//! a unicast association (strongest signal, as plain 802.11 picks it)
//! with any multicast association produced by the MNU/BLA/MLA algorithms,
//! and accounts the joint per-AP airtime — making the paper's motivation
//! ("minimally impact the existing unicast services") measurable.

use serde::{Deserialize, Serialize};

use crate::assoc::Association;
use crate::ids::ApId;
use crate::instance::Instance;
use crate::load::Load;
use crate::ssa::strongest_ap;

/// A per-user pair of associations: where unicast traffic flows and where
/// the multicast stream is received.
///
/// # Example
///
/// ```
/// use mcast_core::examples_paper::figure1_instance;
/// use mcast_core::{solve_mla, DualAssociation, Kbps, Load};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = figure1_instance(Kbps::from_mbps(1));
/// let multicast = solve_mla(&inst)?.association;
/// let dual = DualAssociation::with_ssa_unicast(&inst, multicast);
/// // With 5% unicast demand per user, plenty of headroom remains.
/// let headroom = dual.unicast_headroom(&inst, Load::from_ratio(1, 20));
/// assert!(headroom > Load::ONE);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualAssociation {
    /// The unicast AP of each user (strongest signal; no multicast budget
    /// applies to unicast).
    pub unicast: Association,
    /// The multicast AP of each user (from an association-control
    /// algorithm).
    pub multicast: Association,
}

impl DualAssociation {
    /// Pairs a multicast association with the strongest-signal unicast
    /// association (every covered user gets a unicast AP; multicast
    /// budgets do not constrain unicast service).
    pub fn with_ssa_unicast(inst: &Instance, multicast: Association) -> DualAssociation {
        let mut unicast = Association::empty(inst.n_users());
        for u in inst.users() {
            unicast.set(u, strongest_ap(inst, u));
        }
        DualAssociation { unicast, multicast }
    }

    /// Number of unicast users attached to AP `a`.
    pub fn unicast_users_of(&self, a: ApId) -> usize {
        self.unicast.iter().filter(|&ap| ap == Some(a)).count()
    }

    /// The joint airtime of AP `a`: its multicast load (Definition 1 over
    /// the multicast association) plus `per_user_demand` for each of its
    /// unicast users.
    pub fn ap_airtime(&self, a: ApId, inst: &Instance, per_user_demand: Load) -> Load {
        let unicast = per_user_demand * self.unicast_users_of(a) as u64;
        self.multicast.ap_load(a, inst) + unicast
    }

    /// All joint airtimes, indexable by `ApId::index`.
    pub fn airtimes(&self, inst: &Instance, per_user_demand: Load) -> Vec<Load> {
        inst.aps()
            .map(|a| self.ap_airtime(a, inst, per_user_demand))
            .collect()
    }

    /// The maximum joint airtime over all APs.
    pub fn max_airtime(&self, inst: &Instance, per_user_demand: Load) -> Load {
        self.airtimes(inst, per_user_demand)
            .into_iter()
            .max()
            .unwrap_or(Load::ZERO)
    }

    /// APs whose joint airtime exceeds 1 — unicast demand that cannot be
    /// served at full rate because multicast ate the medium.
    pub fn overloaded_aps(&self, inst: &Instance, per_user_demand: Load) -> Vec<ApId> {
        self.airtimes(inst, per_user_demand)
            .into_iter()
            .enumerate()
            .filter(|(_, t)| *t > Load::ONE)
            .map(|(i, _)| ApId(i as u32))
            .collect()
    }

    /// Total unicast headroom: `Σ max(0, 1 − airtime)` over APs — the
    /// airtime still available for additional unicast traffic network-wide.
    pub fn unicast_headroom(&self, inst: &Instance, per_user_demand: Load) -> Load {
        self.airtimes(inst, per_user_demand)
            .into_iter()
            .map(|t| {
                if t >= Load::ONE {
                    Load::ZERO
                } else {
                    Load::ONE - t
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance};
    use crate::mla::solve_mla;
    use crate::rate::Kbps;
    use crate::solution::Objective;
    use crate::ssa::solve_ssa;

    fn dual_mla(inst: &Instance) -> DualAssociation {
        let mla = solve_mla(inst).unwrap();
        DualAssociation::with_ssa_unicast(inst, mla.association)
    }

    #[test]
    fn unicast_follows_signal_multicast_follows_algorithm() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let dual = dual_mla(&inst);
        // Unicast: u3, u4 hear a2 strongest (5 Mbps closer signal).
        assert_eq!(dual.unicast_users_of(a(1)), 3);
        assert_eq!(dual.unicast_users_of(a(2)), 2);
        // Multicast: MLA puts everyone on a1.
        for u in inst.users() {
            assert_eq!(dual.multicast.ap_of(u), Some(a(1)));
        }
    }

    #[test]
    fn airtime_combines_both_services() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let dual = dual_mla(&inst);
        let demand = Load::from_ratio(1, 20); // 5% airtime per unicast user
                                              // a1: multicast 7/12 + 3 unicast users * 1/20.
        assert_eq!(
            dual.ap_airtime(a(1), &inst, demand),
            Load::from_ratio(7, 12) + Load::from_ratio(3, 20)
        );
        // a2: no multicast + 2 unicast users * 1/20.
        assert_eq!(
            dual.ap_airtime(a(2), &inst, demand),
            Load::from_ratio(1, 10)
        );
        assert!(dual.overloaded_aps(&inst, demand).is_empty());
    }

    #[test]
    fn headroom_rewards_load_minimization() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let demand = Load::from_ratio(1, 20);
        let with_mla = dual_mla(&inst);
        let with_ssa_mcast =
            DualAssociation::with_ssa_unicast(&inst, solve_ssa(&inst, Objective::Mla).association);
        // MLA's smaller multicast footprint leaves at least as much
        // unicast headroom as multicasting from the SSA association.
        assert!(
            with_mla.unicast_headroom(&inst, demand)
                >= with_ssa_mcast.unicast_headroom(&inst, demand)
        );
    }

    #[test]
    fn overload_detection() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let dual = dual_mla(&inst);
        // Huge unicast demand: every AP with unicast users overloads.
        let demand = Load::ONE;
        let overloaded = dual.overloaded_aps(&inst, demand);
        assert_eq!(overloaded, vec![a(1), a(2)]);
        assert_eq!(dual.unicast_headroom(&inst, demand), Load::ZERO);
    }

    #[test]
    fn airtime_totals_rederive() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let dual = dual_mla(&inst);
        let demand = Load::from_ratio(1, 50);
        let airtimes = dual.airtimes(&inst, demand);
        assert_eq!(airtimes.len(), inst.n_aps());
        assert_eq!(
            dual.max_airtime(&inst, demand),
            airtimes.iter().copied().max().unwrap()
        );
    }
}
