//! Centralized **MNU** — Maximize the Number of Users (paper §4.1).
//!
//! MNU reduces to Maximum Coverage with Group Budgets (Theorem 1); the
//! solver is the greedy of Fig. 3 plus the `H₁`/`H₂` partition, an
//! 8-approximation (Theorem 2). NP-hardness follows from Subset Sum
//! (Theorem 7).

use mcast_covering::greedy_mcg;

use crate::assoc::LoadLedger;
use crate::instance::Instance;
use crate::reduction::Reduction;
use crate::solution::{Objective, Solution};

/// Configuration for [`solve_mnu_with`].
#[derive(Debug, Clone, Default)]
pub struct MnuConfig {
    /// After the approximation algorithm, greedily admit still-unsatisfied
    /// users onto APs with *realized* load slack (the realized load of an
    /// association is at most the covering-model cost, so slack may remain).
    /// This is an extension beyond the paper — off by default, benched as
    /// an ablation.
    pub augment: bool,
}

/// Solves MNU with the paper's plain algorithm. See [`solve_mnu_with`].
///
/// # Example
///
/// ```
/// use mcast_core::{examples_paper, solve_mnu, Kbps};
///
/// let inst = examples_paper::figure1_instance(Kbps::from_mbps(3));
/// let sol = solve_mnu(&inst);
/// assert_eq!(sol.satisfied, 3); // the paper's walk-through outcome
/// ```
pub fn solve_mnu(inst: &Instance) -> Solution {
    solve_mnu_with(inst, &MnuConfig::default())
}

/// Solves MNU: associates as many users as possible without any AP
/// exceeding its multicast load budget. Users that cannot be admitted stay
/// unsatisfied (`None` in the association) — unlike BLA/MLA this never
/// fails on uncoverable users.
pub fn solve_mnu_with(inst: &Instance, config: &MnuConfig) -> Solution {
    let red = Reduction::build(inst);
    let sol = greedy_mcg(red.system(), red.budgets());
    let feasible = sol.feasible();
    let model_cost = *feasible.total_cost();
    let mut assoc = red.to_association(feasible);

    if config.augment {
        // Admit leftover users wherever realized slack allows, most
        // constrained (fewest candidate APs) first.
        let mut leftovers: Vec<_> = inst.users().filter(|&u| assoc.ap_of(u).is_none()).collect();
        leftovers.sort_by_key(|&u| inst.candidate_aps(u).len());
        let mut ledger = LoadLedger::new(inst, assoc);
        for u in leftovers {
            let best = inst
                .candidate_aps(u)
                .iter()
                .filter_map(|&(a, _)| {
                    let load = ledger.load_if_joined(u, a)?;
                    (load <= inst.budget(a)).then_some((load, a))
                })
                .min();
            if let Some((_, a)) = best {
                ledger.join(u, a);
            }
        }
        assoc = ledger.into_association();
    }

    debug_assert!(assoc.is_feasible(inst));
    Solution::evaluate(Objective::Mnu, assoc, inst, Some(model_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance, u};
    use crate::instance::InstanceBuilder;
    use crate::load::Load;
    use crate::rate::Kbps;

    /// Paper §4.1 "Example – Centralized MNU": H₁ = {S4} wins — u2, u4, u5
    /// on a1, 3 users served (vs 2 for SSA).
    #[test]
    fn figure1_walkthrough() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let sol = solve_mnu(&inst);
        assert_eq!(sol.satisfied, 3);
        assert_eq!(sol.association.ap_of(u(2)), Some(a(1)));
        assert_eq!(sol.association.ap_of(u(4)), Some(a(1)));
        assert_eq!(sol.association.ap_of(u(5)), Some(a(1)));
        assert_eq!(sol.association.ap_of(u(1)), None);
        assert_eq!(sol.association.ap_of(u(3)), None);
        assert_eq!(sol.max_load, Load::from_ratio(3, 4));
        assert!(sol.association.is_feasible(&inst));
    }

    /// The augmentation pass picks up users the covering model left out:
    /// here u3 still fits on a2 (load 3/5 ≤ 1) after the plain algorithm.
    #[test]
    fn augmentation_admits_leftovers() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let sol = solve_mnu_with(&inst, &MnuConfig { augment: true });
        assert!(sol.satisfied >= 4, "augmented MNU should serve u3 too");
        assert!(sol.association.is_feasible(&inst));
    }

    /// With zero budgets nothing can be admitted.
    #[test]
    fn zero_budget_serves_nobody() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let ap = b.add_ap(Load::ZERO);
        let user = b.add_user(s);
        b.link(ap, user, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let sol = solve_mnu(&inst);
        assert_eq!(sol.satisfied, 0);
        assert_eq!(sol.total_load, Load::ZERO);
    }

    /// Uncoverable users are simply unsatisfied, not an error.
    #[test]
    fn uncoverable_users_stay_unsatisfied() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let ap = b.add_ap(Load::ONE);
        let near = b.add_user(s);
        let _far = b.add_user(s);
        b.link(ap, near, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let sol = solve_mnu(&inst);
        assert_eq!(sol.satisfied, 1);
    }

    /// The subset-sum gadget of Theorem 7: one AP with budget T, sessions
    /// with loads g_i, g_i users each. A perfect subset exists — the greedy
    /// may or may not find it, but never exceeds the budget.
    #[test]
    fn subset_sum_gadget_feasibility() {
        // G = {2, 3, 5}, T = 5 (e.g. {2,3} or {5}).
        let g = [2u32, 3, 5];
        let t = 5u32;
        let mut b = InstanceBuilder::new();
        // Unit link rate 1 Mbps; session s_i streams at g_i Mbps so a unit
        // -rate transmission costs g_i... scaled: budget T/10, loads g_i/10.
        b.supported_rates([Kbps::from_mbps(10)]);
        let ap = b.add_ap(Load::from_ratio(u64::from(t), 10));
        for &gi in &g {
            let s = b.add_session(Kbps::from_mbps(gi));
            for _ in 0..gi {
                let u = b.add_user(s);
                b.link(ap, u, Kbps::from_mbps(10)).unwrap();
            }
        }
        let inst = b.build().unwrap();
        let sol = solve_mnu(&inst);
        assert!(sol.association.is_feasible(&inst));
        // Optimal serves exactly T = 5 users; 8-approx guarantees >= 1.
        assert!(sol.satisfied >= 1 && sol.satisfied <= 5);
    }
}
