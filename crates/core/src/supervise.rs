//! Supervision vocabulary for the fault-tolerant partitioned runtime.
//!
//! [`run_distributed_supervised`](crate::partition::run_distributed_supervised)
//! runs every tile worker under `catch_unwind` and reports failures to
//! the coordinator as typed [`WorkerFailure`]s instead of aborting the
//! process. The coordinator recovers along a fixed escalation ladder —
//! retry the halo exchange, quarantine the tile (recompute its rounds
//! inline from the merged global state), or degrade to the W = 1 engine
//! for the remaining rounds — and every rung preserves the exact decision
//! sequence of the fault-free run (`run_distributed` is the oracle).
//!
//! [`ChaosPlan`] is the fault-injection counterpart: a seedable script of
//! worker panics, halo-reply drops/duplicates/delays, and torn checkpoint
//! writes, threaded through the runtime the same way `FaultPlan` threads
//! through the simulator. Each op fires at most once (one-shot atomic
//! latches), so a plan is safe to share across worker threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::checkpoint::CheckpointSink;

/// What went wrong in a tile worker, as reported to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// The tile whose worker failed.
    pub tile: usize,
    /// The 1-based round the failure surfaced in.
    pub round: u32,
    /// The failure class.
    pub kind: FailureKind,
}

/// Classes of worker failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The worker panicked; the payload is the panic message.
    Panic(String),
    /// The worker missed the round's halo-exchange deadline even after
    /// the configured resend retries.
    ExchangeTimeout,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panic(msg) => {
                write!(
                    f,
                    "worker for tile {} panicked in round {}: {}",
                    self.tile, self.round, msg
                )
            }
            FailureKind::ExchangeTimeout => write!(
                f,
                "ExchangeTimeout: tile {} missed the round {} halo-exchange deadline",
                self.tile, self.round
            ),
        }
    }
}

impl std::error::Error for WorkerFailure {}

impl WorkerFailure {
    /// Builds a panic failure from a `catch_unwind` payload.
    pub(crate) fn from_panic(
        tile: usize,
        round: u32,
        payload: &(dyn std::any::Any + Send),
    ) -> WorkerFailure {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        WorkerFailure {
            tile,
            round,
            kind: FailureKind::Panic(msg),
        }
    }
}

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOp {
    /// The worker for `tile` panics at the start of `round`.
    WorkerPanic {
        /// Target tile.
        tile: u32,
        /// 1-based round the panic fires in.
        round: u32,
    },
    /// The worker's reply for `round` is dropped (never sent); the
    /// coordinator recovers it via the deadline + resend path.
    DropReply {
        /// Target tile.
        tile: u32,
        /// 1-based round whose reply is lost.
        round: u32,
    },
    /// The worker's reply for `round` is delivered twice.
    DuplicateReply {
        /// Target tile.
        tile: u32,
        /// 1-based round whose reply is duplicated.
        round: u32,
    },
    /// The worker's reply for `round` is delayed by `millis` before
    /// delivery (possibly past the exchange deadline).
    DelayReply {
        /// Target tile.
        tile: u32,
        /// 1-based round whose reply is delayed.
        round: u32,
        /// Delay in milliseconds.
        millis: u64,
    },
    /// The checkpoint written after `round` is torn mid-frame (the sink
    /// persists only a partial record, which loaders must discard).
    TornCheckpoint {
        /// 1-based round whose checkpoint write is torn.
        round: u32,
    },
}

/// What a worker should do with a reply it is about to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyFate {
    /// Send normally.
    Deliver,
    /// Do not send (the coordinator's resend path recovers the cached
    /// reply).
    Drop,
    /// Send twice.
    Duplicate,
    /// Sleep, then send.
    Delay(Duration),
}

/// A seedable, shareable script of injected faults. Every op fires at
/// most once; matching is by `(tile, round)` (or round alone for
/// checkpoint tears), so a plan is deterministic regardless of thread
/// scheduling.
#[derive(Debug)]
pub struct ChaosPlan {
    ops: Vec<ChaosOp>,
    fired: Vec<AtomicBool>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// A plan running exactly `ops`.
    pub fn new(ops: Vec<ChaosOp>) -> ChaosPlan {
        let fired = ops.iter().map(|_| AtomicBool::new(false)).collect();
        ChaosPlan { ops, fired }
    }

    /// A deterministic seeded plan over `n_tiles` tiles and rounds
    /// `1..=horizon_rounds`. Always contains at least one
    /// [`ChaosOp::WorkerPanic`] and one [`ChaosOp::DropReply`]; the seed
    /// decides their placement and whether duplicate/delay/torn-checkpoint
    /// ops ride along.
    pub fn seeded(seed: u64, n_tiles: usize, horizon_rounds: u32) -> ChaosPlan {
        let mut s = seed;
        let w = n_tiles.max(1) as u64;
        let h = u64::from(horizon_rounds.max(1));
        let mut ops = vec![
            ChaosOp::WorkerPanic {
                tile: (splitmix64(&mut s) % w) as u32,
                round: (splitmix64(&mut s) % h + 1) as u32,
            },
            ChaosOp::DropReply {
                tile: (splitmix64(&mut s) % w) as u32,
                round: (splitmix64(&mut s) % h + 1) as u32,
            },
        ];
        if splitmix64(&mut s).is_multiple_of(2) {
            ops.push(ChaosOp::DuplicateReply {
                tile: (splitmix64(&mut s) % w) as u32,
                round: (splitmix64(&mut s) % h + 1) as u32,
            });
        }
        if splitmix64(&mut s).is_multiple_of(2) {
            ops.push(ChaosOp::DelayReply {
                tile: (splitmix64(&mut s) % w) as u32,
                round: (splitmix64(&mut s) % h + 1) as u32,
                millis: splitmix64(&mut s) % 8 + 1,
            });
        }
        if splitmix64(&mut s).is_multiple_of(2) {
            ops.push(ChaosOp::TornCheckpoint {
                round: (splitmix64(&mut s) % h + 1) as u32,
            });
        }
        ChaosPlan::new(ops)
    }

    /// The scripted ops, in declaration order.
    pub fn ops(&self) -> &[ChaosOp] {
        &self.ops
    }

    /// Latches op `i`: true the first time, false afterwards.
    fn fire(&self, i: usize) -> bool {
        !self.fired[i].swap(true, Ordering::Relaxed)
    }

    /// True if a [`ChaosOp::WorkerPanic`] for `(tile, round)` fires now.
    pub fn panic_due(&self, tile: u32, round: u32) -> bool {
        self.ops.iter().enumerate().any(|(i, op)| {
            matches!(op, ChaosOp::WorkerPanic { tile: t, round: r } if *t == tile && *r == round)
                && self.fire(i)
        })
    }

    /// The fate of the reply `tile` is about to send for `round`.
    pub fn reply_fate(&self, tile: u32, round: u32) -> ReplyFate {
        for (i, op) in self.ops.iter().enumerate() {
            let fate = match *op {
                ChaosOp::DropReply { tile: t, round: r } if t == tile && r == round => {
                    Some(ReplyFate::Drop)
                }
                ChaosOp::DuplicateReply { tile: t, round: r } if t == tile && r == round => {
                    Some(ReplyFate::Duplicate)
                }
                ChaosOp::DelayReply {
                    tile: t,
                    round: r,
                    millis,
                } if t == tile && r == round => {
                    Some(ReplyFate::Delay(Duration::from_millis(millis)))
                }
                _ => None,
            };
            if let Some(fate) = fate {
                if self.fire(i) {
                    return fate;
                }
            }
        }
        ReplyFate::Deliver
    }

    /// True if the checkpoint written after `round` should be torn.
    pub fn checkpoint_torn(&self, round: u32) -> bool {
        self.ops.iter().enumerate().any(|(i, op)| {
            matches!(op, ChaosOp::TornCheckpoint { round: r } if *r == round) && self.fire(i)
        })
    }
}

/// Options for a supervised partitioned run.
///
/// The default is a fully plain run: no deadline (blocking exchange), no
/// checkpointing, no chaos, no trace, ghost auditing in debug builds
/// only.
#[derive(Clone, Copy)]
pub struct SuperviseOptions<'a> {
    /// Per-round halo-exchange deadline. `None` blocks forever (only
    /// sensible without chaos); when a [`ChaosPlan`] is present and no
    /// deadline is set, the runtime applies a short default so dropped
    /// replies are always recovered.
    pub deadline: Option<Duration>,
    /// Resend attempts per exchange before escalating to quarantine
    /// (Simultaneous) or degrade (Serial).
    pub max_retries: u32,
    /// Write a checkpoint every K completed rounds (requires `sink`).
    pub checkpoint_every: Option<usize>,
    /// Collect the decision trace into the outcome.
    pub trace: bool,
    /// Rebuild boundary-AP ghost state from scratch after every halo
    /// merge and compare against the incremental ledger (the drift
    /// auditor); panics in the worker — hence quarantines under
    /// supervision — on the first diverging entry.
    pub audit: bool,
    /// Injected faults.
    pub chaos: Option<&'a ChaosPlan>,
    /// Checkpoint destination.
    pub sink: Option<&'a dyn CheckpointSink>,
}

impl Default for SuperviseOptions<'_> {
    fn default() -> Self {
        SuperviseOptions {
            deadline: None,
            max_retries: 3,
            checkpoint_every: None,
            trace: false,
            audit: cfg!(debug_assertions),
            chaos: None,
            sink: None,
        }
    }
}

/// What the supervisor had to do to finish the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Every failure observed, in detection order.
    pub failures: Vec<WorkerFailure>,
    /// Halo-exchange resend rounds triggered by deadline misses.
    pub retries: u32,
    /// Tiles quarantined (recomputed inline by the coordinator).
    pub quarantined: Vec<usize>,
    /// The round at which the run degraded to the W = 1 engine, if any.
    pub degraded_at_round: Option<usize>,
    /// Whole checkpoints durably written (torn writes excluded).
    pub checkpoints_written: usize,
    /// Checkpoint writes that failed (the run continues without them).
    pub checkpoint_errors: usize,
}

impl RecoveryReport {
    /// True when the run needed no recovery at all.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
            && self.retries == 0
            && self.quarantined.is_empty()
            && self.degraded_at_round.is_none()
            && self.checkpoint_errors == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_ops_fire_once() {
        let plan = ChaosPlan::new(vec![
            ChaosOp::WorkerPanic { tile: 1, round: 2 },
            ChaosOp::DropReply { tile: 0, round: 3 },
            ChaosOp::TornCheckpoint { round: 4 },
        ]);
        assert!(!plan.panic_due(0, 2));
        assert!(!plan.panic_due(1, 1));
        assert!(plan.panic_due(1, 2));
        assert!(!plan.panic_due(1, 2), "one-shot");
        assert_eq!(plan.reply_fate(0, 2), ReplyFate::Deliver);
        assert_eq!(plan.reply_fate(0, 3), ReplyFate::Drop);
        assert_eq!(plan.reply_fate(0, 3), ReplyFate::Deliver, "one-shot");
        assert!(plan.checkpoint_torn(4));
        assert!(!plan.checkpoint_torn(4), "one-shot");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_panic_and_drop() {
        for seed in 0..32u64 {
            let a = ChaosPlan::seeded(seed, 4, 10);
            let b = ChaosPlan::seeded(seed, 4, 10);
            assert_eq!(a.ops(), b.ops(), "seed {seed}");
            assert!(a
                .ops()
                .iter()
                .any(|op| matches!(op, ChaosOp::WorkerPanic { .. })));
            assert!(a
                .ops()
                .iter()
                .any(|op| matches!(op, ChaosOp::DropReply { .. })));
            for op in a.ops() {
                let (tile, round) = match *op {
                    ChaosOp::WorkerPanic { tile, round }
                    | ChaosOp::DropReply { tile, round }
                    | ChaosOp::DuplicateReply { tile, round }
                    | ChaosOp::DelayReply { tile, round, .. } => (tile, round),
                    ChaosOp::TornCheckpoint { round } => (0, round),
                };
                assert!(tile < 4, "seed {seed}: {op:?}");
                assert!((1..=10).contains(&round), "seed {seed}: {op:?}");
            }
        }
    }

    #[test]
    fn failure_display_names_the_escalation() {
        let timeout = WorkerFailure {
            tile: 3,
            round: 7,
            kind: FailureKind::ExchangeTimeout,
        };
        assert!(timeout.to_string().contains("ExchangeTimeout"));
        assert!(timeout.to_string().contains("tile 3"));
        let panic = WorkerFailure {
            tile: 1,
            round: 2,
            kind: FailureKind::Panic("boom".into()),
        };
        assert!(panic.to_string().contains("boom"));
    }
}
