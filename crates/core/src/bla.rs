//! Centralized **BLA** — Balance the Load among APs (paper §5.1).
//!
//! BLA reduces to Set Cover with Group Budgets (Theorem 3) and is solved by
//! guessing the optimal per-AP budget `B*` and iterating the MCG greedy
//! (Fig. 6), a `log₈⁄₇(n) + 1` approximation (Theorem 4). NP-hardness
//! follows from Minimum Makespan Scheduling (Theorem 8).

use mcast_covering::{solve_scg, SetId};

use crate::instance::Instance;
use crate::load::Load;
use crate::reduction::Reduction;
use crate::solution::{Objective, Solution, SolveError};

/// Configuration for [`solve_bla_with`].
#[derive(Debug, Clone)]
pub struct BlaConfig {
    /// Number of evenly spaced candidate budgets between the largest
    /// single-set cost and the fallback upper bound (paper: "try several
    /// (a constant number) values of `B*` between `c_max` and 1").
    pub grid_points: usize,
}

impl Default for BlaConfig {
    fn default() -> Self {
        BlaConfig { grid_points: 16 }
    }
}

/// Solves BLA with the default candidate grid. See [`solve_bla_with`].
///
/// # Errors
///
/// [`SolveError::Uncoverable`] if some user is out of range of every AP.
///
/// # Example
///
/// ```
/// use mcast_core::{examples_paper, solve_bla, Kbps, Load};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = examples_paper::figure1_instance(Kbps::from_mbps(1));
/// let sol = solve_bla(&inst)?;
/// assert!(sol.max_load <= Load::from_ratio(7, 12));
/// # Ok(())
/// # }
/// ```
pub fn solve_bla(inst: &Instance) -> Result<Solution, SolveError> {
    solve_bla_with(inst, &BlaConfig::default())
}

/// Solves BLA: associates every user so that the *maximum* per-AP multicast
/// load is (approximately) minimized.
///
/// The candidate `B*` grid contains:
/// * the distinct set costs of the reduction (the natural breakpoints),
/// * `grid_points` evenly spaced values from `L` to `max(1, c_max)`, where
///   `L = max over users of the cheapest set covering them` — a certified
///   lower bound on the optimum, so the grid brackets it (the paper says
///   "between c_max and 1"; extending the low end below `c_max` only adds
///   candidates and never worsens the best-of-grid result),
/// * and the sum of all set costs as an always-feasible fallback (so a
///   coverable instance never fails, even if its optimum exceeds load 1).
///
/// # Errors
///
/// [`SolveError::Uncoverable`] if some user is out of range of every AP;
/// [`SolveError::NoFeasibleBudget`] cannot occur for coverable instances
/// thanks to the fallback candidate, but is still mapped defensively.
pub fn solve_bla_with(inst: &Instance, config: &BlaConfig) -> Result<Solution, SolveError> {
    let red = Reduction::build(inst);
    let system = red.system();
    if inst.n_users() == 0 {
        return Ok(Solution::evaluate(
            Objective::Bla,
            crate::assoc::Association::empty(0),
            inst,
            Some(Load::ZERO),
        ));
    }
    if !system.all_coverable() {
        return Err(SolveError::Uncoverable {
            users: red.uncoverable_users(),
        });
    }

    let candidates = budget_grid(system, config.grid_points);
    let scg = solve_scg(system, &candidates).map_err(|e| match e {
        mcast_covering::ScgError::NoFeasibleBudget => SolveError::NoFeasibleBudget,
        mcast_covering::ScgError::Uncoverable { elements } => SolveError::Uncoverable {
            users: elements
                .into_iter()
                .map(|e| crate::ids::UserId(e.0))
                .collect(),
        },
        mcast_covering::ScgError::NoCandidates => SolveError::NoFeasibleBudget,
    })?;

    let model_cost = *scg.max_group_cost();
    let assoc = red.to_association(scg.cover());
    Ok(Solution::evaluate(
        Objective::Bla,
        assoc,
        inst,
        Some(model_cost),
    ))
}

/// Builds the candidate `B*` list described on [`solve_bla_with`].
fn budget_grid(system: &mcast_covering::SetSystem<Load>, grid_points: usize) -> Vec<Load> {
    let c_max = *system.max_set_cost().expect("non-empty system");
    let mut candidates: Vec<Load> = system.sets().iter().map(|s| *s.cost()).collect();

    // Lower bound on the optimum: every user must be covered by some set,
    // and its cheapest option lands in some group.
    let low = (0..system.n_elements() as u32)
        .filter_map(|e| {
            system
                .covering_sets(mcast_covering::ElementId(e))
                .iter()
                .map(|&sid| *system.set(sid).cost())
                .min()
        })
        .max()
        .unwrap_or(c_max);

    let hi = c_max.max(Load::ONE);
    if grid_points >= 2 && low < hi {
        // Geometric spacing concentrates candidates near the low end,
        // where the optimum usually lives (quantized to 1/10000 — the
        // knob needs coverage, not exactness).
        let lo_f = (low.as_f64() * 0.5).max(1e-4);
        let hi_f = hi.as_f64();
        let ratio = (hi_f / lo_f).powf(1.0 / (grid_points as f64 - 1.0));
        let mut v = lo_f;
        for _ in 0..grid_points {
            let q = (v * 10_000.0).round().max(1.0) as i128;
            candidates.push(Load::new(q, 10_000));
            v *= ratio;
        }
    }
    candidates.push(hi);

    // Always-feasible fallback: the total cost of all sets.
    let all: Vec<SetId> = (0..system.n_sets()).map(|i| SetId(i as u32)).collect();
    candidates.push(mcast_covering::total_cost(system, &all));

    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance};
    use crate::instance::InstanceBuilder;
    use crate::rate::Kbps;

    /// Paper §5.1 "Example – Centralized BLA": with B* = 1/2 the greedy
    /// selects S4 then S2 — all users on a1 — so the *model* max group cost
    /// is 7/12; the optimum is 1/2. The grid may find either, but never
    /// worse than 7/12 and never better than 1/2.
    #[test]
    fn figure1_walkthrough_bounds() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let sol = solve_bla(&inst).unwrap();
        assert_eq!(sol.satisfied, 5);
        assert!(sol.max_load <= Load::from_ratio(7, 12));
        assert!(sol.max_load >= Load::from_ratio(1, 2));
        assert!(sol.association.is_feasible(&inst));
    }

    /// The model cost bounds the realized max load.
    #[test]
    fn realized_max_never_exceeds_model() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let sol = solve_bla(&inst).unwrap();
        assert!(sol.max_load <= sol.model_cost.unwrap());
    }

    /// An instance whose optimum max load exceeds 1 still solves thanks to
    /// the fallback candidate (BLA has no hard budget).
    #[test]
    fn works_when_optimum_exceeds_load_one() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let a0 = b.add_ap(Load::ONE);
        // Seven 1 Mbps sessions, each with one user, all on one AP:
        // unavoidable load 7/6 > 1.
        for _ in 0..7 {
            let s = b.add_session(Kbps::from_mbps(1));
            let u = b.add_user(s);
            b.link(a0, u, Kbps::from_mbps(6)).unwrap();
        }
        let inst = b.build().unwrap();
        let sol = solve_bla(&inst).unwrap();
        assert_eq!(sol.satisfied, 7);
        assert_eq!(sol.max_load, Load::from_ratio(7, 6));
    }

    #[test]
    fn uncoverable_user_is_an_error() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(Kbps::from_mbps(1));
        b.add_ap(Load::ONE);
        b.add_user(s);
        let inst = b.build().unwrap();
        assert!(matches!(
            solve_bla(&inst).unwrap_err(),
            SolveError::Uncoverable { .. }
        ));
    }

    /// Two identical APs, two users each requesting distinct sessions:
    /// balancing puts one session per AP.
    #[test]
    fn balances_across_equal_aps() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s1 = b.add_session(Kbps::from_mbps(3));
        let s2 = b.add_session(Kbps::from_mbps(3));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let u1 = b.add_user(s1);
        let u2 = b.add_user(s2);
        for &u in &[u1, u2] {
            b.link(a1, u, Kbps::from_mbps(6)).unwrap();
            b.link(a2, u, Kbps::from_mbps(6)).unwrap();
        }
        let inst = b.build().unwrap();
        let sol = solve_bla(&inst).unwrap();
        assert_eq!(sol.max_load, Load::from_ratio(1, 2));
        let loads = sol.association.loads(&inst);
        assert_eq!(loads[a(1).index()], Load::from_ratio(1, 2));
        assert_eq!(loads[a(2).index()], Load::from_ratio(1, 2));
    }
}
