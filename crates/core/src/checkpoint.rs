//! Deterministic checkpoints for the partitioned distributed engine.
//!
//! Every K completed rounds the supervised coordinator snapshots the
//! run's *complete* resumable state into a [`PartitionCheckpoint`]:
//! the finished round, the global association, the cycle-detection
//! history (in insertion order), and the decision trace so far. Nothing
//! else is needed — per-tile [`TileLedger`](crate::partition) counts and
//! ghost replicas are a pure function of the global association (exact
//! rational `Load` arithmetic makes them history-independent), and the
//! "RNG stream position" is the run's [`DecisionOrder`](crate::DecisionOrder)
//! seed, which lives in the config and is re-expanded on resume. A resume
//! therefore rebuilds every shard from the checkpointed association with
//! an all-dirty worklist, which is outcome- and trace-neutral (a user
//! whose neighborhood did not change re-decides "stay").
//!
//! Serialization and framing live in `mcast-events` (crc32-framed JSONL,
//! torn-tail truncation on load); this module only defines the state and
//! the [`CheckpointSink`] boundary so `mcast-core` stays I/O-free.

use serde::{Deserialize, Serialize};

use crate::assoc::Association;
use crate::ids::{ApId, UserId};
use crate::instance::Instance;
use crate::partition::{MoveRec, PartitionError};

/// Schema tag of serialized [`PartitionCheckpoint`]s.
pub const CHECKPOINT_SCHEMA: &str = "mcast-ckpt/v1";

/// The complete resumable state of a partitioned run after `round`
/// completed rounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionCheckpoint {
    /// Format tag ([`CHECKPOINT_SCHEMA`]).
    pub schema: String,
    /// Completed (1-based) rounds; the resume starts at `round + 1`.
    pub round: u32,
    /// Total moves applied so far.
    pub moves: u64,
    /// The global association after `round` rounds.
    pub assoc: Vec<Option<ApId>>,
    /// The cycle-detection history in insertion order (initial state
    /// first; the last entry equals `assoc`).
    pub seen: Vec<Vec<Option<ApId>>>,
    /// The decision trace so far (empty unless `traced`).
    pub trace: Vec<MoveRec>,
    /// Whether the checkpointed run was collecting a trace.
    pub traced: bool,
}

impl PartitionCheckpoint {
    /// Validates the checkpoint against an instance: schema, sizes, and
    /// in-range associations (the same check a fresh run performs on its
    /// initial association).
    pub fn validate(&self, inst: &Instance) -> Result<(), PartitionError> {
        if self.schema != CHECKPOINT_SCHEMA {
            return Err(PartitionError::BadCheckpoint("unknown checkpoint schema"));
        }
        if self.assoc.len() != inst.n_users() || self.seen.iter().any(|s| s.len() != inst.n_users())
        {
            return Err(PartitionError::BadCheckpoint(
                "checkpoint association length does not match the instance",
            ));
        }
        if self.seen.last() != Some(&self.assoc) {
            return Err(PartitionError::BadCheckpoint(
                "checkpoint history does not end at the checkpointed association",
            ));
        }
        for (i, &ap) in self.assoc.iter().enumerate() {
            if let Some(a) = ap {
                if inst.multicast_rate_to(a, UserId(i as u32)).is_none() {
                    return Err(PartitionError::InvalidInitialAssociation {
                        user: UserId(i as u32),
                        ap: a,
                    });
                }
            }
        }
        Ok(())
    }

    /// The checkpointed association as an [`Association`].
    pub fn association(&self) -> Association {
        Association::from_vec(self.assoc.clone())
    }
}

/// Why a checkpoint could not be written or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint error: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

/// Where checkpoints go. `mcast-events` provides the crc32-framed file
/// sink; tests use in-memory sinks. Implementations must be callable
/// through a shared reference (the coordinator writes from inside a
/// thread scope).
pub trait CheckpointSink {
    /// Durably appends a whole checkpoint frame.
    fn save(&self, cp: &PartitionCheckpoint) -> Result<(), CheckpointError>;

    /// Chaos hook: persist a *torn* (partial) frame, as if the process
    /// died mid-write. Loaders must fall back to the previous whole
    /// frame. The default is a no-op (the tear loses the write entirely).
    fn save_torn(&self, cp: &PartitionCheckpoint) -> Result<(), CheckpointError> {
        let _ = cp;
        Ok(())
    }
}
