//! Association control for multicast streaming in large-scale WLANs.
//!
//! This crate reproduces the system of **"Optimizing Multicast Performance
//! in Large-Scale WLANs"** (Ai Chen, Dongwook Lee, Prasun Sinha — ICDCS
//! 2007): instead of letting every user associate with the strongest-signal
//! AP, the network (or each user, via a local rule) chooses which AP serves
//! each multicast user, exploiting the overlapping coverage of dense AP
//! deployments. Three objectives are supported:
//!
//! * **MNU** — maximize the number of users that receive their stream,
//!   under a per-AP multicast load budget ([`solve_mnu`]).
//! * **BLA** — serve everyone while minimizing the *maximum* per-AP
//!   multicast load ([`solve_bla`]).
//! * **MLA** — serve everyone while minimizing the *total* multicast load
//!   ([`solve_mla`]).
//!
//! All three are NP-hard; the centralized solvers are the paper's
//! approximation algorithms (factors 8, `log₈⁄₇(n)+1` and `ln(n)+1`
//! respectively), built on the reductions to covering problems in
//! [`reduction`] and the generic solvers of the `mcast-covering` crate.
//! Distributed variants ([`distributed`]) let each user decide from local
//! information queried from neighboring APs; the [`ssa`] module provides
//! the strongest-signal baseline the paper compares against.
//!
//! # Quick start
//!
//! ```
//! use mcast_core::{examples_paper, solve_mla, Kbps};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 1 WLAN with 1 Mbps streams.
//! let instance = examples_paper::figure1_instance(Kbps::from_mbps(1));
//! let solution = solve_mla(&instance)?;
//! // The optimum puts every user on AP a1: total load 1/3 + 1/4 = 7/12.
//! assert_eq!(solution.association.total_load(&instance).to_string(), "7/12");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assoc;
mod ids;
mod instance;
mod load;
mod rate;

pub mod bla;
pub mod checkpoint;
pub mod distributed;
pub mod dual;
pub mod examples_paper;
pub mod mla;
pub mod mnu;
pub mod partition;
pub mod reduction;
pub mod reference;
pub mod repair;
pub mod revenue;
pub mod solution;
pub mod ssa;
pub mod stats;
pub mod supervise;

pub use assoc::{AssocError, Association, LoadLedger};
pub use bla::solve_bla;
pub use bla::{solve_bla_with, BlaConfig};
pub use checkpoint::{CheckpointError, CheckpointSink, PartitionCheckpoint, CHECKPOINT_SCHEMA};
pub use distributed::{
    local_decision, local_decision_scratch, local_decision_with, run_distributed,
    run_distributed_traced, run_min_max_vector, run_min_total, ApStateView, DecisionOrder,
    DecisionScratch, DistributedConfig, DistributedOutcome, ExecutionMode, Policy,
};
pub use dual::DualAssociation;
pub use ids::{ApId, SessionId, UserId};
pub use instance::{
    Instance, InstanceBuilder, InstanceError, SessionSpec, SignalStrength,
    StreamingInstanceBuilder, UserSpec, NO_SIGNAL, SPARSE_FORMAT,
};
pub use load::Load;
pub use mla::{solve_mla, solve_mla_with, MlaAlgorithm};
pub use mnu::{solve_mnu, solve_mnu_with, MnuConfig};
pub use partition::{
    resume_distributed_supervised, run_distributed_partitioned, run_distributed_partitioned_traced,
    run_distributed_supervised, MoveRec, Partition, PartitionError, SupervisedOutcome,
};
pub use rate::{Kbps, RatePolicy, RateStep, RateTable, RateTableError};
pub use reference::{local_decision_reference, run_distributed_reference, ReferenceLedger};
pub use repair::{best_rehome_target, repair_user, strongest_allowed_ap};
pub use solution::{Objective, Solution, SolveError};
pub use ssa::solve_ssa;
pub use stats::InstanceStats;
pub use supervise::{
    ChaosOp, ChaosPlan, FailureKind, RecoveryReport, ReplyFate, SuperviseOptions, WorkerFailure,
};
