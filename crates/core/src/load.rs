//! Exact rational arithmetic for multicast loads.
//!
//! A multicast load (Definition 1 of the paper) is a sum of fractions
//! `session_rate / transmission_rate`. Representing loads as reduced
//! rationals keeps every feasibility comparison (`load ≤ budget`) and every
//! algorithmic tie-break exact and platform-independent; floating point
//! appears only at the reporting boundary via [`Load::as_f64`].

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::rate::Kbps;

/// An exact rational load value (always stored reduced, denominator > 0).
///
/// Supports negative values so that *load deltas* (used by the distributed
/// algorithms when a user evaluates leaving one AP for another) are
/// first-class.
///
/// # Example
///
/// ```
/// use mcast_core::Load;
///
/// let a = Load::from_ratio(1, 3);
/// let b = Load::from_ratio(1, 4);
/// assert_eq!(a + b, Load::from_ratio(7, 12)); // the paper's MLA example
/// assert!(a + b < Load::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawLoad", into = "RawLoad")]
pub struct Load {
    num: i128,
    den: i128,
}

/// Serialized form of [`Load`]; re-normalized on deserialization.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RawLoad {
    num: i128,
    den: i128,
}

impl From<Load> for RawLoad {
    fn from(l: Load) -> Self {
        RawLoad {
            num: l.num,
            den: l.den,
        }
    }
}

impl TryFrom<RawLoad> for Load {
    type Error = String;

    fn try_from(r: RawLoad) -> Result<Self, Self::Error> {
        if r.den == 0 {
            return Err("load denominator must be nonzero".to_string());
        }
        Ok(Load::new(r.num, r.den))
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Load {
    /// The zero load.
    pub const ZERO: Load = Load { num: 0, den: 1 };
    /// Load 1 — an AP that multicasts 100% of the time.
    pub const ONE: Load = Load { num: 1, den: 1 };

    /// Builds a load `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Load {
        assert!(den != 0, "load denominator must be nonzero");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.abs(), den.abs());
        if num == 0 {
            return Load::ZERO;
        }
        let g = gcd(num, den);
        Load {
            num: sign * (num / g),
            den: den / g,
        }
    }

    /// Builds a load `num / den` from non-negative integers (the common
    /// `session_kbps / tx_kbps` case).
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio(num: u64, den: u64) -> Load {
        Load::new(num as i128, den as i128)
    }

    /// The airtime fraction an AP spends multicasting a stream of
    /// `stream` kbps at transmission rate `tx` kbps: `stream / tx`.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is zero.
    pub fn per_transmission(stream: Kbps, tx: Kbps) -> Load {
        Load::from_ratio(u64::from(stream.0), u64::from(tx.0))
    }

    /// A load expressed in thousandths (`permille(900)` = 0.9, the paper's
    /// default per-AP multicast budget).
    pub fn permille(thousandths: u32) -> Load {
        Load::new(thousandths as i128, 1000)
    }

    /// Numerator of the reduced fraction (sign carries here).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced fraction (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether this load is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this load is negative (possible for deltas).
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Lossy conversion for reporting/plotting.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact division by a positive integer (used to build budget grids).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_int(self, divisor: u64) -> Load {
        assert!(divisor != 0, "division by zero");
        Load::new(self.num, Load::checked_mul(self.den, divisor as i128))
    }

    fn checked_mul(a: i128, b: i128) -> i128 {
        a.checked_mul(b)
            .expect("load arithmetic overflow: fraction denominators grew beyond i128")
    }

    /// Whether both components fit in `i64`, so a pairwise `i128` product
    /// cannot overflow and needs no checked multiplication. Reduced WLAN
    /// fractions are tiny (rate ratios in lowest terms), so this is the
    /// hot case — `i128::checked_mul` lowers to a slow overflow-detecting
    /// routine that dominates comparison-heavy loops like the CELF heap.
    #[inline]
    fn fits_i64(&self) -> bool {
        const LIM: i128 = i64::MAX as i128;
        self.num.abs() <= LIM && self.den <= LIM
    }
}

impl Default for Load {
    fn default() -> Self {
        Load::ZERO
    }
}

impl fmt::Display for Load {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Load {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Load {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0).
        if self.fits_i64() && other.fits_i64() {
            // |i64| * |i64| always fits in i128: plain multiplies suffice.
            return (self.num * other.den).cmp(&(other.num * self.den));
        }
        Load::checked_mul(self.num, other.den).cmp(&Load::checked_mul(other.num, self.den))
    }
}

impl Add for Load {
    type Output = Load;

    fn add(self, rhs: Load) -> Load {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let l = Load::checked_mul(self.den / g, rhs.den);
        let num = Load::checked_mul(self.num, l / self.den)
            .checked_add(Load::checked_mul(rhs.num, l / rhs.den))
            .expect("load arithmetic overflow in addition");
        Load::new(num, l)
    }
}

impl AddAssign for Load {
    fn add_assign(&mut self, rhs: Load) {
        *self = *self + rhs;
    }
}

impl Sub for Load {
    type Output = Load;

    fn sub(self, rhs: Load) -> Load {
        self + (-rhs)
    }
}

impl SubAssign for Load {
    fn sub_assign(&mut self, rhs: Load) {
        *self = *self - rhs;
    }
}

impl Neg for Load {
    type Output = Load;

    fn neg(self) -> Load {
        Load {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul<u64> for Load {
    type Output = Load;

    fn mul(self, rhs: u64) -> Load {
        Load::new(Load::checked_mul(self.num, rhs as i128), self.den)
    }
}

impl Sum for Load {
    fn sum<I: Iterator<Item = Load>>(iter: I) -> Load {
        iter.fold(Load::ZERO, |acc, l| acc + l)
    }
}

impl From<u32> for Load {
    fn from(v: u32) -> Self {
        Load::new(v as i128, 1)
    }
}

impl mcast_covering::Cost for Load {
    fn zero() -> Self {
        Load::ZERO
    }

    fn add(&self, other: &Self) -> Self {
        *self + *other
    }

    fn cmp_effectiveness(n1: u64, c1: &Self, n2: u64, c2: &Self) -> Ordering {
        // n1/c1 vs n2/c2 with c = num/den:
        // n1*den1/num1 vs n2*den2/num2  <=>  n1*den1*num2 vs n2*den2*num1.
        // Costs are strictly positive so signs don't flip.
        debug_assert!(c1.num > 0 && c2.num > 0);
        // Fast path: three factors each below 2^42 keep the triple product
        // under 2^126, so unchecked i128 multiplies are exact. This is the
        // hot comparison of the lazy-greedy heap (see crates/covering), and
        // WLAN instances (gains ≤ users, reduced rate ratios) always hit it.
        const LIM: i128 = 1 << 42;
        let (a1, d1, m1) = (n1 as i128, c1.den, c1.num);
        let (a2, d2, m2) = (n2 as i128, c2.den, c2.num);
        if a1 < LIM
            && a2 < LIM
            && (0..LIM).contains(&d1)
            && (0..LIM).contains(&d2)
            && (0..LIM).contains(&m1)
            && (0..LIM).contains(&m2)
        {
            return (a1 * d1 * m2).cmp(&(a2 * d2 * m1));
        }
        let lhs = Load::checked_mul(Load::checked_mul(a1, d1), m2);
        let rhs = Load::checked_mul(Load::checked_mul(a2, d2), m1);
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_covering::Cost;

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(Load::new(2, 4), Load::from_ratio(1, 2));
        assert_eq!(Load::new(-2, 4), Load::new(1, -2));
        assert_eq!(Load::new(-2, -4), Load::from_ratio(1, 2));
        assert_eq!(Load::new(0, -7), Load::ZERO);
        assert_eq!(Load::from_ratio(1, 2).denom(), 2);
        assert_eq!(Load::new(-6, 4).numer(), -3);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Load::new(1, 0);
    }

    #[test]
    fn paper_example_arithmetic() {
        // §3.2 BLA example: 1/3 + 1/6 = 1/2.
        assert_eq!(
            Load::from_ratio(1, 3) + Load::from_ratio(1, 6),
            Load::from_ratio(1, 2)
        );
        // §3.2 MLA example: 1/3 + 1/4 = 7/12.
        assert_eq!(
            Load::from_ratio(1, 3) + Load::from_ratio(1, 4),
            Load::from_ratio(7, 12)
        );
        // §3.2 MNU infeasibility: 3/3 + 3/6 > 1.
        assert!(Load::from_ratio(3, 3) + Load::from_ratio(3, 6) > Load::ONE);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Load::from_ratio(1, 3) > Load::from_ratio(1, 4));
        assert!(Load::from_ratio(9, 20) < Load::from_ratio(1, 2));
        assert_eq!(
            Load::from_ratio(2, 6).cmp(&Load::from_ratio(1, 3)),
            Ordering::Equal
        );
        assert!(Load::new(-1, 3) < Load::ZERO);
    }

    #[test]
    fn deltas_can_be_negative() {
        let delta = Load::from_ratio(1, 5) - Load::from_ratio(1, 4);
        assert!(delta.is_negative());
        assert_eq!(delta, Load::new(-1, 20));
        assert_eq!(-delta, Load::from_ratio(1, 20));
    }

    #[test]
    fn per_transmission_and_permille() {
        assert_eq!(
            Load::per_transmission(Kbps(1000), Kbps(6000)),
            Load::from_ratio(1, 6)
        );
        assert_eq!(Load::permille(900), Load::from_ratio(9, 10));
        assert_eq!(Load::permille(42), Load::from_ratio(21, 500));
    }

    #[test]
    fn sum_and_scalar_mul() {
        let total: Load = [Load::from_ratio(1, 6); 3].into_iter().sum();
        assert_eq!(total, Load::from_ratio(1, 2));
        assert_eq!(Load::from_ratio(1, 6) * 3, Load::from_ratio(1, 2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Load::from_ratio(7, 12).to_string(), "7/12");
        assert_eq!(Load::ZERO.to_string(), "0");
        assert_eq!(Load::from(3u32).to_string(), "3");
        assert_eq!(Load::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn as_f64_close() {
        assert!((Load::from_ratio(7, 12).as_f64() - 0.5833333).abs() < 1e-6);
    }

    #[test]
    fn cost_impl_effectiveness() {
        // 3 / (3/4) = 4   vs   2 / 1 = 2
        let c1 = Load::from_ratio(3, 4);
        let c2 = Load::ONE;
        assert_eq!(
            <Load as Cost>::cmp_effectiveness(3, &c1, 2, &c2),
            Ordering::Greater
        );
        // 2/(1/3) = 6 == 6/(1/1)... 6/1 = 6.
        assert_eq!(
            <Load as Cost>::cmp_effectiveness(2, &Load::from_ratio(1, 3), 6, &Load::ONE),
            Ordering::Equal
        );
    }

    #[test]
    fn serde_roundtrip_and_normalization() {
        let l = Load::from_ratio(7, 12);
        let json = serde_json::to_string(&l).unwrap();
        let back: Load = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
        // Unreduced input normalizes.
        let raw: Load = serde_json::from_str(r#"{"num":2,"den":4}"#).unwrap();
        assert_eq!(raw, Load::from_ratio(1, 2));
        // Zero denominator rejected.
        assert!(serde_json::from_str::<Load>(r#"{"num":1,"den":0}"#).is_err());
    }
}
