//! Distributed association algorithms (paper §4.2, §5.2, §6.2).
//!
//! Each user periodically queries its neighboring APs for the sessions they
//! transmit and at what rates, then makes a purely local decision:
//!
//! * [`Policy::MinTotalLoad`] (distributed MNU and MLA): associate with the
//!   neighboring AP that minimizes the total load of the neighboring APs —
//!   equivalently, that minimally increases the global total load.
//! * [`Policy::MinMaxVector`] (distributed BLA): associate with the AP that
//!   lexicographically minimizes the non-increasing sorted vector of
//!   neighboring-AP loads.
//!
//! Under [`ExecutionMode::Serial`] (users decide one at a time) both
//! policies converge on static networks (Lemmas 1 and 2); under
//! [`ExecutionMode::Simultaneous`] (all users decide against the same
//! snapshot) they may oscillate forever — the paper's Figure 4
//! counterexample, detected here via state hashing.
//!
//! The message-level realization of these rules (probe/query/response
//! timing, and the lock-based coordination of §8) lives in the `mcast-sim`
//! crate; this module is the algorithmic core.

use std::collections::HashSet;

use crate::assoc::{Association, LoadLedger};
use crate::ids::{ApId, UserId};
use crate::instance::{Instance, SignalStrength};
use crate::load::Load;
use crate::partition::MoveRec;

/// The local decision rule a user applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Minimize the total load of the neighboring APs (distributed
    /// MNU / MLA, §4.2 & §6.2).
    MinTotalLoad,
    /// Minimize the sorted (non-increasing) load vector of the neighboring
    /// APs (distributed BLA, §5.2).
    MinMaxVector,
}

/// The order in which users take their turns within a round.
///
/// The paper's walk-throughs process users "in the order u1, u2, …"; real
/// deployments see an arbitrary arrival order. Both converge (the Lemma 1
/// potential argument is order-free), but the *local optimum reached* can
/// differ — the `ablation_order` experiment quantifies that spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecisionOrder {
    /// Ascending `UserId` (the paper's examples).
    #[default]
    ById,
    /// A deterministic pseudo-random permutation of the users, drawn from
    /// the given seed (fixed across rounds).
    Shuffled(u64),
}

impl DecisionOrder {
    /// The per-round visiting order over `n` users.
    pub fn order(self, n: usize) -> Vec<UserId> {
        let mut ids: Vec<UserId> = (0..n as u32).map(UserId).collect();
        if let DecisionOrder::Shuffled(seed) = self {
            // A small self-contained Fisher-Yates on splitmix64 output, so
            // the core crate needs no RNG dependency.
            let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for i in (1..ids.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                ids.swap(i, j);
            }
        }
        ids
    }
}

/// How user decisions are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Users decide one at a time against up-to-date information
    /// (converges — Lemmas 1, 2).
    Serial,
    /// All users decide against the same round-start snapshot, then all
    /// moves apply at once (may oscillate — Figure 4).
    Simultaneous,
}

/// Configuration for [`run_distributed`].
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// The decision rule.
    pub policy: Policy,
    /// The scheduling model.
    pub mode: ExecutionMode,
    /// Stop after this many rounds even without convergence.
    pub max_rounds: usize,
    /// Enforce per-AP budgets when joining or moving (always on for MNU;
    /// the paper's BLA/MLA evaluation keeps the loose 0.9 budget).
    pub respect_budget: bool,
    /// Hysteresis: an *associated* user only moves if the improvement is
    /// strictly greater than this (zero = the paper's rule). For
    /// [`Policy::MinTotalLoad`] the improvement is the total-load
    /// decrease; for [`Policy::MinMaxVector`] it is the decrease at the
    /// first differing position of the sorted load vector. Joins of
    /// unassociated users are never suppressed. A small hysteresis trades
    /// a slightly worse objective for far less re-association churn under
    /// mobility (see the `mobility` experiment).
    pub hysteresis: Load,
    /// The per-round visiting order (serial mode).
    pub order: DecisionOrder,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            policy: Policy::MinTotalLoad,
            mode: ExecutionMode::Serial,
            max_rounds: 100,
            respect_budget: true,
            hysteresis: Load::ZERO,
            order: DecisionOrder::ById,
        }
    }
}

/// The result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The final association.
    pub association: Association,
    /// Rounds executed (a round = every user deciding once).
    pub rounds: usize,
    /// Total number of association changes (including initial joins).
    pub moves: usize,
    /// True if a full round passed with no changes.
    pub converged: bool,
    /// True if the global state revisited a previous round's state without
    /// converging — a live oscillation (only possible in
    /// [`ExecutionMode::Simultaneous`]).
    pub cycle_detected: bool,
}

/// What a deciding user knows about its neighborhood: either the exact
/// global state (a [`LoadLedger`], used by [`run_distributed`]) or a view
/// assembled from `LoadQuery`/`LoadResponse` exchanges (the message-level
/// simulator in `mcast-sim`).
///
/// The contract mirrors the information the paper's protocol carries:
/// current AP loads, "my AP's load if I left", and "that AP's load if I
/// joined" — nothing global.
pub trait ApStateView {
    /// The instance being played.
    fn instance(&self) -> &Instance;
    /// The neighboring APs the view actually has load information for.
    /// Decision rules only consider these. The default — every candidate
    /// AP of the instance — fits an omniscient ledger; a message-level
    /// view restricts it to the APs that answered its queries, because
    /// under failure injection a silent AP may be crashed or out of
    /// range and its load is simply unknown.
    fn reachable_aps(&self, u: UserId) -> Vec<ApId> {
        self.instance()
            .candidate_aps(u)
            .iter()
            .map(|&(a, _)| a)
            .collect()
    }
    /// Allocation-free variant of [`reachable_aps`](ApStateView::reachable_aps):
    /// clears `out` and fills it with the same APs in the same order. The
    /// decision rules call this with a reused scratch buffer; views that
    /// can enumerate their neighbors without building a `Vec` should
    /// override it (the default delegates and allocates).
    fn reachable_aps_into(&self, u: UserId, out: &mut Vec<ApId>) {
        out.clear();
        out.extend(self.reachable_aps(u));
    }
    /// The AP user `u` is currently associated with, if any.
    fn ap_of(&self, u: UserId) -> Option<ApId>;
    /// The current multicast load of AP `a`.
    fn ap_load(&self, a: ApId) -> Load;
    /// AP `a`'s load if `u` joined it (`None` if out of range).
    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load>;
    /// The current AP's load if `u` left it (`None` if unassociated).
    fn load_if_left(&self, u: UserId) -> Option<Load>;
}

impl ApStateView for LoadLedger<'_> {
    fn instance(&self) -> &Instance {
        LoadLedger::instance(self)
    }
    fn reachable_aps_into(&self, u: UserId, out: &mut Vec<ApId>) {
        out.clear();
        out.extend(
            LoadLedger::instance(self)
                .candidate_aps(u)
                .iter()
                .map(|&(a, _)| a),
        );
    }
    fn ap_of(&self, u: UserId) -> Option<ApId> {
        LoadLedger::ap_of(self, u)
    }
    fn ap_load(&self, a: ApId) -> Load {
        LoadLedger::ap_load(self, a)
    }
    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        LoadLedger::load_if_joined(self, u, a)
    }
    fn load_if_left(&self, u: UserId) -> Option<Load> {
        LoadLedger::load_if_left(self, u)
    }
}

/// A user's local decision given its view of the neighborhood: the AP it
/// would switch to, or `None` to stay as it is.
///
/// This is the pure decision rule shared by [`run_distributed`] and the
/// message-level simulator (`mcast-sim`). Equivalent to
/// [`local_decision_with`] with zero hysteresis (the paper's rule).
pub fn local_decision<V: ApStateView>(
    ledger: &V,
    u: UserId,
    policy: Policy,
    respect_budget: bool,
) -> Option<ApId> {
    local_decision_with(ledger, u, policy, respect_budget, Load::ZERO)
}

/// [`local_decision`] with a hysteresis threshold: an associated user only
/// moves when the improvement strictly exceeds `hysteresis` (see
/// [`DistributedConfig::hysteresis`]).
///
/// Allocates fresh scratch buffers; hot loops should hold a
/// [`DecisionScratch`] and call [`local_decision_scratch`] instead.
pub fn local_decision_with<V: ApStateView>(
    ledger: &V,
    u: UserId,
    policy: Policy,
    respect_budget: bool,
    hysteresis: Load,
) -> Option<ApId> {
    let mut scratch = DecisionScratch::default();
    local_decision_scratch(ledger, u, policy, respect_budget, hysteresis, &mut scratch)
}

/// Reusable buffers for [`local_decision_scratch`]. One instance per
/// deciding loop amortizes every per-decision allocation; the buffers grow
/// to the largest neighborhood seen and stay there.
#[derive(Debug, Clone, Default)]
pub struct DecisionScratch {
    /// APs the view has load data for (`reachable_aps_into` target).
    reachable: Vec<ApId>,
    /// Sorted non-increasing loads of `reachable` under "stay".
    baseline: Vec<Load>,
    /// The winning candidate's vector (materialized once per decision).
    cand: Vec<Load>,
}

/// [`local_decision_with`] with caller-owned scratch buffers: the same
/// decision, allocation-free after warm-up.
///
/// For [`Policy::MinMaxVector`] this also replaces the naive
/// sort-per-candidate scoring with a delta evaluation. Every candidate's
/// hypothetical vector is the shared stay-baseline with the leave-side
/// perturbation (identical for all candidates, so it cancels) plus one
/// replacement — the join AP's entry `x = ap_load(a)` becomes
/// `y = load_if_joined(u, a)`. Two equal-size multisets that differ by one
/// replacement each compare, in non-increasing lexicographic order, as
/// their two-element difference multisets `{y_a, x_b}` vs `{y_b, x_a}`
/// (adding common elements to both sides of a sorted-multiset comparison
/// never changes its outcome — the outcome is decided by which side has
/// the higher multiplicity of the largest value whose multiplicities
/// differ). Scoring a candidate against the running best is therefore
/// O(1), the full decision O(k log k) for one baseline sort instead of an
/// O(k log k) sort per candidate, and the winning vector is materialized
/// only once for the hysteresis check. Equal difference multisets mean
/// equal vectors, so the lexicographic + signal + id tie-break is
/// identical to the reference rule
/// ([`local_decision_reference`](crate::reference::local_decision_reference)).
pub fn local_decision_scratch<V: ApStateView>(
    ledger: &V,
    u: UserId,
    policy: Policy,
    respect_budget: bool,
    hysteresis: Load,
    scratch: &mut DecisionScratch,
) -> Option<ApId> {
    let inst = ledger.instance();
    let current = ledger.ap_of(u);

    let DecisionScratch {
        reachable,
        baseline,
        cand,
    } = scratch;
    ledger.reachable_aps_into(u, reachable);

    // Feasible candidates (excluding the current AP — staying is the
    // baseline, not a move), drawn from the APs the view has data for.
    let feasible = |a: ApId| -> Option<Load> {
        if Some(a) == current {
            return None;
        }
        let joined = ledger.load_if_joined(u, a)?;
        if respect_budget && joined > inst.budget(a) {
            return None;
        }
        Some(joined)
    };

    match policy {
        Policy::MinTotalLoad => {
            // Delta of the total neighboring-AP load if u moves to `a`
            // (equal to the global total-load delta: only neighbors change).
            let leave_delta = match current {
                Some(cur) => ledger.load_if_left(u).expect("associated") - ledger.ap_load(cur),
                None => Load::ZERO,
            };
            let best = reachable
                .iter()
                .filter_map(|&a| Some((a, feasible(a)?)))
                .map(|(a, joined)| {
                    let delta = (joined - ledger.ap_load(a)) + leave_delta;
                    let signal = inst.signal(a, u).expect("candidate implies link");
                    (delta, std::cmp::Reverse(signal), a)
                })
                .min();
            match (best, current) {
                // Associated users move only on a strict improvement
                // (beyond the hysteresis threshold).
                (Some((delta, _, a)), Some(_)) if delta < -hysteresis => Some(a),
                // Unassociated users join the least-increase AP (§4.2),
                // even though that increases the total load.
                (Some((_, _, a)), None) => Some(a),
                _ => None,
            }
        }
        Policy::MinMaxVector => {
            // Sorted non-increasing load vector of u's neighboring APs
            // under each hypothesis; lexicographically smaller wins
            // (footnote 5 of the paper). Sort once for "stay"; candidates
            // then compare against the running best in O(1) via their
            // single-replacement difference multisets (see the function
            // doc), and only the winner's vector is ever materialized.
            baseline.clear();
            baseline.extend(reachable.iter().map(|&b| ledger.ap_load(b)));
            baseline.sort_unstable_by(|x, y| y.cmp(x));

            // The leave-side perturbation is shared by every candidate —
            // but only applies if the view actually lists the current AP
            // (a message-level view may have lost contact with it).
            let leave = match current {
                Some(cur) if reachable.contains(&cur) => {
                    let left = ledger.load_if_left(u).expect("associated");
                    Some((ledger.ap_load(cur), left))
                }
                _ => None,
            };

            // Best candidate as (removed entry x, inserted entry y,
            // signal, ap). `Iterator::min` keeps the first of equal
            // elements, but full keys never tie (ApId is distinct), so
            // replacing only on strictly-smaller is equivalent.
            let mut best: Option<(Load, Load, SignalStrength, ApId)> = None;
            for &a in reachable.iter() {
                let Some(joined) = feasible(a) else { continue };
                let x = ledger.ap_load(a);
                let y = joined;
                let signal = inst.signal(a, u).expect("candidate implies link");
                let better = match best {
                    None => true,
                    Some((bx, by, bsig, ba)) => match replacement_cmp(y, bx, by, x) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        // Equal difference multisets: the hypothetical
                        // vectors are identical — fall to the signal
                        // (descending) then ApId tie-break.
                        std::cmp::Ordering::Equal => {
                            (std::cmp::Reverse(signal), a) < (std::cmp::Reverse(bsig), ba)
                        }
                    },
                };
                if better {
                    best = Some((x, y, signal, a));
                }
            }
            match (best, current) {
                (Some((x, y, _, a)), Some(_)) => {
                    // Materialize the winning vector once: the baseline
                    // with the join and leave entries spliced in place.
                    cand.clear();
                    cand.extend_from_slice(baseline);
                    replace_sorted_desc(cand, x, y);
                    if let Some((cur_load, left)) = leave {
                        replace_sorted_desc(cand, cur_load, left);
                    }
                    vector_improves(baseline, cand, hysteresis).then_some(a)
                }
                (Some((_, _, _, a)), None) => Some(a),
                _ => None,
            }
        }
    }
}

/// Compares two single-replacement perturbations of a shared multiset in
/// non-increasing lexicographic order: candidate `a` (removes `xa`,
/// inserts `ya`) versus candidate `b` (removes `xb`, inserts `yb`).
///
/// Adding `{xa, xb}` to both hypothetical multisets cancels the removals,
/// reducing the comparison to the two-element multisets `{ya, xb}` vs
/// `{yb, xa}` — sound because a sorted-multiset comparison is decided by
/// which side has the higher multiplicity of the largest value whose
/// multiplicities differ, a property unchanged by adding common elements.
fn replacement_cmp(ya: Load, xb: Load, yb: Load, xa: Load) -> std::cmp::Ordering {
    let a = if ya >= xb { (ya, xb) } else { (xb, ya) };
    let b = if yb >= xa { (yb, xa) } else { (xa, yb) };
    a.cmp(&b)
}

/// In a non-increasing sorted vector, replace one occurrence of `old` with
/// `new`, keeping the vector sorted: two binary searches plus a splice,
/// instead of re-sorting.
fn replace_sorted_desc(v: &mut Vec<Load>, old: Load, new: Load) {
    if old == new {
        return;
    }
    // Comparator inverted for descending order.
    let i = v
        .binary_search_by(|probe| old.cmp(probe))
        .expect("perturbed load is present in the baseline vector");
    v.remove(i);
    let j = match v.binary_search_by(|probe| new.cmp(probe)) {
        Ok(j) | Err(j) => j,
    };
    v.insert(j, new);
}

/// Lexicographic improvement with hysteresis: `candidate < stay`, and the
/// first differing position improves by strictly more than `hysteresis`.
pub(crate) fn vector_improves(stay: &[Load], candidate: &[Load], hysteresis: Load) -> bool {
    for (s, c) in stay.iter().zip(candidate) {
        if c < s {
            return *s - *c > hysteresis;
        }
        if c > s {
            return false;
        }
    }
    false // equal vectors
}

/// Runs a distributed algorithm from `initial` until convergence, cycle
/// detection, or `max_rounds`.
///
/// Users decide in ascending `UserId` order within each round (the paper's
/// examples use exactly this order); randomized arrival order is obtained
/// by permuting user ids at instance-generation time.
///
/// # Example
///
/// ```
/// use mcast_core::examples_paper::figure1_instance;
/// use mcast_core::{run_distributed, Association, DistributedConfig, Kbps, Load};
///
/// let inst = figure1_instance(Kbps::from_mbps(1));
/// let out = run_distributed(
///     &inst,
///     &DistributedConfig::default(),
///     Association::empty(inst.n_users()),
/// );
/// assert!(out.converged); // Lemma 1
/// assert_eq!(out.association.total_load(&inst), Load::from_ratio(7, 12));
/// ```
///
/// # Panics
///
/// Panics if `initial` has the wrong size or associates a user with an AP
/// out of its range.
///
/// # Implementation notes
///
/// Decision-sequence-identical to the straightforward sweep
/// ([`run_distributed_reference`](crate::reference::run_distributed_reference))
/// but with three accelerations: the visiting order is computed once per
/// run instead of per round; decisions share one [`DecisionScratch`]; and
/// a dirty-user worklist skips users whose neighborhood state cannot have
/// changed since their last (stay) decision. A user's decision depends
/// only on its own association and the member multisets of the APs it can
/// reach, so after a move `from → to` exactly the users in
/// `reachable_users(from) ∪ reachable_users(to)` can decide differently —
/// everyone else would repeat their previous "stay". Near convergence a
/// round therefore costs O(moves × neighborhood), not O(n).
pub fn run_distributed(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
) -> DistributedOutcome {
    run_distributed_impl(inst, config, initial, None).0
}

/// [`run_distributed`] plus the full decision trace: one [`MoveRec`] per
/// applied move, in application order. The partitioned engine's
/// equivalence tests compare this trace against
/// [`run_distributed_partitioned_traced`](crate::partition::run_distributed_partitioned_traced)
/// to pin the *sequence* of decisions, not just the final state.
pub fn run_distributed_traced(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
) -> (DistributedOutcome, Vec<MoveRec>) {
    let (out, trace) = run_distributed_impl(inst, config, initial, Some(Vec::new()));
    (out, trace.unwrap_or_default())
}

fn run_distributed_impl(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
    trace: Option<Vec<MoveRec>>,
) -> (DistributedOutcome, Option<Vec<MoveRec>>) {
    let mut seen: HashSet<Vec<Option<ApId>>> = HashSet::new();
    seen.insert(initial.to_vec());
    continue_distributed(inst, config, initial, 1, 0, seen, trace)
}

/// Resumable core of [`run_distributed`]: runs rounds
/// `start_round..=max_rounds` from `current`, carrying the move count,
/// cycle-detection set, and (optional) trace prefix of the rounds already
/// executed. With `start_round == 1`, zero moves, and `seen = {current}`
/// this is exactly an uninterrupted run; the partitioned runtime's
/// degrade-to-W=1 and checkpoint-restore paths enter here mid-run.
/// Starting all-dirty is outcome- and trace-neutral: a user whose
/// neighborhood did not change since its last decision re-decides "stay"
/// and emits no move.
pub(crate) fn continue_distributed(
    inst: &Instance,
    config: &DistributedConfig,
    current: Association,
    start_round: usize,
    moves_so_far: usize,
    mut seen: HashSet<Vec<Option<ApId>>>,
    mut trace: Option<Vec<MoveRec>>,
) -> (DistributedOutcome, Option<Vec<MoveRec>>) {
    let mut ledger = LoadLedger::new(inst, current);
    let mut moves = moves_so_far;

    let order = config.order.order(inst.n_users());
    let mut scratch = DecisionScratch::default();
    // Every user must decide at least once; afterwards only moves make
    // users dirty again. A mover re-dirties itself (it reaches both
    // endpoints), so oscillations are still observed.
    let mut dirty = vec![true; inst.n_users()];

    for round in start_round..=config.max_rounds {
        let mut changed = false;
        match config.mode {
            ExecutionMode::Serial => {
                for (pos, &u) in order.iter().enumerate() {
                    if !std::mem::replace(&mut dirty[u.index()], false) {
                        continue;
                    }
                    if let Some(a) = local_decision_scratch(
                        &ledger,
                        u,
                        config.policy,
                        config.respect_budget,
                        config.hysteresis,
                        &mut scratch,
                    ) {
                        let from = ledger.ap_of(u);
                        ledger.reassociate(u, a);
                        moves += 1;
                        changed = true;
                        mark_dirty(inst, &mut dirty, from, a);
                        if let Some(t) = trace.as_mut() {
                            t.push(MoveRec {
                                round: round as u32,
                                pos: pos as u32,
                                user: u,
                                from,
                                to: a,
                            });
                        }
                    }
                }
            }
            ExecutionMode::Simultaneous => {
                let snapshot = ledger.clone();
                let decisions: Vec<(UserId, ApId)> = inst
                    .users()
                    .filter(|u| std::mem::replace(&mut dirty[u.index()], false))
                    .filter_map(|u| {
                        local_decision_scratch(
                            &snapshot,
                            u,
                            config.policy,
                            config.respect_budget,
                            config.hysteresis,
                            &mut scratch,
                        )
                        .map(|a| (u, a))
                    })
                    .collect();
                for (u, a) in decisions {
                    let from = ledger.ap_of(u);
                    ledger.reassociate(u, a);
                    moves += 1;
                    changed = true;
                    mark_dirty(inst, &mut dirty, from, a);
                    if let Some(t) = trace.as_mut() {
                        t.push(MoveRec {
                            round: round as u32,
                            pos: u.0,
                            user: u,
                            from,
                            to: a,
                        });
                    }
                }
            }
        }

        if !changed {
            return (
                DistributedOutcome {
                    association: ledger.into_association(),
                    rounds: round,
                    moves,
                    converged: true,
                    cycle_detected: false,
                },
                trace,
            );
        }
        if !seen.insert(ledger.association().to_vec()) {
            // State repeats: a live oscillation.
            return (
                DistributedOutcome {
                    association: ledger.into_association(),
                    rounds: round,
                    moves,
                    converged: false,
                    cycle_detected: true,
                },
                trace,
            );
        }
    }

    (
        DistributedOutcome {
            association: ledger.into_association(),
            rounds: config.max_rounds,
            moves,
            converged: false,
            cycle_detected: false,
        },
        trace,
    )
}

/// Marks every user whose local view a move `from → to` could have
/// changed: those within range of either endpoint. Membership changes
/// matter even when the AP's transmit load does not move (a join at a
/// rate above the current minimum leaves `ap_load` unchanged but changes
/// co-members' `load_if_left`), so invalidation keys on the move itself,
/// not on observed load deltas.
fn mark_dirty(inst: &Instance, dirty: &mut [bool], from: Option<ApId>, to: ApId) {
    for &v in inst.reachable_users(to) {
        dirty[v.index()] = true;
    }
    if let Some(f) = from {
        for &v in inst.reachable_users(f) {
            dirty[v.index()] = true;
        }
    }
}

/// Convenience: distributed MNU/MLA from an empty association
/// (users join one by one, as in the paper's walk-throughs).
pub fn run_min_total(inst: &Instance) -> DistributedOutcome {
    run_distributed(
        inst,
        &DistributedConfig::default(),
        Association::empty(inst.n_users()),
    )
}

/// Convenience: distributed BLA from an empty association.
pub fn run_min_max_vector(inst: &Instance) -> DistributedOutcome {
    run_distributed(
        inst,
        &DistributedConfig {
            policy: Policy::MinMaxVector,
            ..DistributedConfig::default()
        },
        Association::empty(inst.n_users()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance, figure4_instance, figure4_start, u};
    use crate::rate::Kbps;

    /// Paper §4.2 "Example – Distributed MNU" (3 Mbps): u1→a1, u2 blocked,
    /// u3→a1, u4→a2, u5→a2 — 4 of 5 users served.
    #[test]
    fn figure1_distributed_mnu_walkthrough() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let out = run_min_total(&inst);
        assert!(out.converged);
        assert_eq!(out.association.satisfied_count(), 4);
        assert_eq!(out.association.ap_of(u(1)), Some(a(1)));
        assert_eq!(out.association.ap_of(u(2)), None);
        assert_eq!(out.association.ap_of(u(3)), Some(a(1)));
        assert_eq!(out.association.ap_of(u(4)), Some(a(2)));
        assert_eq!(out.association.ap_of(u(5)), Some(a(2)));
        assert!(out.association.is_feasible(&inst));
    }

    /// Paper §6.2 "Example – Distributed MLA" (1 Mbps): all users end on
    /// a1, total load 7/12 — the optimum.
    #[test]
    fn figure1_distributed_mla_walkthrough() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let out = run_min_total(&inst);
        assert!(out.converged);
        assert_eq!(out.association.satisfied_count(), 5);
        for paper_u in 1..=5 {
            assert_eq!(out.association.ap_of(u(paper_u)), Some(a(1)));
        }
        assert_eq!(out.association.total_load(&inst), Load::from_ratio(7, 12));
    }

    /// Paper §5.2 "Example – Distributed BLA" (1 Mbps): u1,u2,u3 on a1;
    /// u4,u5 on a2; loads 1/2 and 1/3 — the optimum.
    #[test]
    fn figure1_distributed_bla_walkthrough() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let out = run_min_max_vector(&inst);
        assert!(out.converged);
        assert_eq!(out.association.ap_of(u(1)), Some(a(1)));
        assert_eq!(out.association.ap_of(u(2)), Some(a(1)));
        assert_eq!(out.association.ap_of(u(3)), Some(a(1)));
        assert_eq!(out.association.ap_of(u(4)), Some(a(2)));
        assert_eq!(out.association.ap_of(u(5)), Some(a(2)));
        let loads = out.association.loads(&inst);
        assert_eq!(loads[0], Load::from_ratio(1, 2));
        assert_eq!(loads[1], Load::from_ratio(1, 3));
    }

    /// Figure 4: simultaneous decisions oscillate forever — u2 and u3 swap
    /// APs every round. Serial decisions from the same start converge.
    #[test]
    fn figure4_simultaneous_oscillates_serial_converges() {
        let inst = figure4_instance();
        let sim = run_distributed(
            &inst,
            &DistributedConfig {
                mode: ExecutionMode::Simultaneous,
                ..DistributedConfig::default()
            },
            figure4_start(),
        );
        assert!(!sim.converged);
        assert!(sim.cycle_detected);

        let serial = run_distributed(&inst, &DistributedConfig::default(), figure4_start());
        assert!(serial.converged);
        assert!(!serial.cycle_detected);
        // Paper: a single swap brings the total to 9/20.
        assert_eq!(
            serial.association.total_load(&inst),
            Load::from_ratio(9, 20)
        );
    }

    /// Lemma 1: serial MinTotalLoad converges — and the total load is
    /// non-increasing once everyone has joined.
    #[test]
    fn serial_converges_within_bound() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let out = run_min_total(&inst);
        assert!(out.converged);
        assert!(out.rounds <= 10);
    }

    /// Budget enforcement: with tiny budgets, users that do not fit stay
    /// unsatisfied rather than overloading APs.
    #[test]
    fn budget_respected_users_blocked() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let out = run_distributed(&inst, &DistributedConfig::default(), Association::empty(5));
        assert!(out.association.is_feasible(&inst));
    }

    /// With budgets ignored, everyone is placed (BLA/MLA style).
    #[test]
    fn budget_ignored_places_everyone() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let out = run_distributed(
            &inst,
            &DistributedConfig {
                respect_budget: false,
                ..DistributedConfig::default()
            },
            Association::empty(5),
        );
        assert!(out.converged);
        assert_eq!(out.association.satisfied_count(), 5);
    }

    /// Decision orders: ById is the identity; shuffles are permutations,
    /// deterministic per seed, and different seeds usually differ.
    #[test]
    fn decision_order_permutations() {
        let by_id = DecisionOrder::ById.order(6);
        assert_eq!(by_id, (0..6).map(UserId).collect::<Vec<_>>());
        let a = DecisionOrder::Shuffled(1).order(50);
        let b = DecisionOrder::Shuffled(1).order(50);
        let c = DecisionOrder::Shuffled(2).order(50);
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, c, "different seeds differ");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).map(UserId).collect::<Vec<_>>());
    }

    /// Different serial orders still converge to feasible local optima —
    /// possibly different ones (Figure 1 at 3 Mbps is order-sensitive).
    #[test]
    fn shuffled_orders_converge() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        for seed in 0..6 {
            let out = run_distributed(
                &inst,
                &DistributedConfig {
                    order: DecisionOrder::Shuffled(seed),
                    ..DistributedConfig::default()
                },
                Association::empty(5),
            );
            assert!(out.converged, "seed {seed}");
            assert!(out.association.is_feasible(&inst));
            assert!(out.association.satisfied_count() >= 3, "seed {seed}");
        }
    }

    /// Hysteresis suppresses marginal moves: in Figure 4's start state the
    /// profitable swap gains exactly 1/20, so a threshold of 1/20 (or
    /// more) freezes the system, while a smaller one lets it move.
    #[test]
    fn hysteresis_suppresses_marginal_moves() {
        let inst = figure4_instance();
        let frozen = run_distributed(
            &inst,
            &DistributedConfig {
                hysteresis: Load::from_ratio(1, 20),
                ..DistributedConfig::default()
            },
            figure4_start(),
        );
        assert!(frozen.converged);
        assert_eq!(frozen.moves, 0);
        assert_eq!(frozen.association.total_load(&inst), Load::from_ratio(1, 2));

        let moving = run_distributed(
            &inst,
            &DistributedConfig {
                hysteresis: Load::from_ratio(1, 40),
                ..DistributedConfig::default()
            },
            figure4_start(),
        );
        assert!(moving.converged);
        assert_eq!(moving.moves, 1);
        assert_eq!(
            moving.association.total_load(&inst),
            Load::from_ratio(9, 20)
        );
    }

    /// Hysteresis never blocks initial joins: everyone still gets service.
    #[test]
    fn hysteresis_does_not_block_joins() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let out = run_distributed(
            &inst,
            &DistributedConfig {
                hysteresis: Load::from_ratio(1, 2),
                respect_budget: false,
                ..DistributedConfig::default()
            },
            Association::empty(5),
        );
        assert!(out.converged);
        assert_eq!(out.association.satisfied_count(), 5);
    }

    /// Starting from a bad association, serial BLA strictly improves the
    /// sorted load vector — here it must not get worse.
    #[test]
    fn bla_improves_from_bad_start() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        // Everyone on a1: max load 7/12.
        let start = Association::from_vec(vec![Some(a(1)); 5]);
        let before = start.max_load(&inst);
        let out = run_distributed(
            &inst,
            &DistributedConfig {
                policy: Policy::MinMaxVector,
                ..DistributedConfig::default()
            },
            start,
        );
        assert!(out.converged);
        assert!(out.association.max_load(&inst) <= before);
        assert_eq!(out.association.satisfied_count(), 5);
    }
}
