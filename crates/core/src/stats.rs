//! Instance statistics: the deployment-shape numbers papers report
//! alongside results (coverage degree, link-rate mix, session demand).

use crate::instance::Instance;
use crate::rate::Kbps;

/// Summary statistics of a WLAN instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Users per AP-coverage count: `degree_histogram[d]` = users hearing
    /// exactly `d` APs (index 0 = uncovered users).
    pub degree_histogram: Vec<usize>,
    /// Mean number of APs a user hears.
    pub mean_user_degree: f64,
    /// Total number of (AP, user) links.
    pub n_links: usize,
    /// Links per supported rate, ascending by rate.
    pub rate_histogram: Vec<(Kbps, usize)>,
    /// Users per session, indexable by `SessionId::index`.
    pub session_demand: Vec<usize>,
    /// Estimated resident size of the instance's arrays in bytes
    /// ([`Instance::resident_bytes_estimate`]): what holding this
    /// instance in memory actually costs, O(links) not O(APs × users).
    pub resident_bytes_est: usize,
}

impl InstanceStats {
    /// Computes the statistics of `inst`.
    pub fn of(inst: &Instance) -> InstanceStats {
        let mut degree_histogram = Vec::new();
        let mut n_links = 0usize;
        let mut degree_total = 0usize;
        for u in inst.users() {
            let d = inst.candidate_aps(u).len();
            if degree_histogram.len() <= d {
                degree_histogram.resize(d + 1, 0);
            }
            degree_histogram[d] += 1;
            n_links += d;
            degree_total += d;
        }
        if degree_histogram.is_empty() {
            degree_histogram.push(0);
        }

        let mut rate_histogram: Vec<(Kbps, usize)> =
            inst.supported_rates().iter().map(|&r| (r, 0)).collect();
        for a in inst.aps() {
            for &u in inst.reachable_users(a) {
                let rate = inst.link_rate(a, u).expect("reachable implies link");
                if let Some(slot) = rate_histogram.iter_mut().find(|(r, _)| *r == rate) {
                    slot.1 += 1;
                }
            }
        }

        let mut session_demand = vec![0usize; inst.n_sessions()];
        for u in inst.users() {
            session_demand[inst.user_session(u).index()] += 1;
        }

        InstanceStats {
            mean_user_degree: if inst.n_users() == 0 {
                0.0
            } else {
                degree_total as f64 / inst.n_users() as f64
            },
            degree_histogram,
            n_links,
            rate_histogram,
            session_demand,
            resident_bytes_est: inst.resident_bytes_estimate(),
        }
    }

    /// Users that no AP can reach.
    pub fn uncovered_users(&self) -> usize {
        self.degree_histogram[0]
    }

    /// The busiest session's user count.
    pub fn peak_session_demand(&self) -> usize {
        self.session_demand.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure1_instance;
    use crate::instance::InstanceBuilder;
    use crate::load::Load;

    #[test]
    fn figure1_stats() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let stats = InstanceStats::of(&inst);
        // u1, u2 hear one AP; u3, u4, u5 hear two.
        assert_eq!(stats.degree_histogram, vec![0, 2, 3]);
        assert_eq!(stats.n_links, 8);
        assert!((stats.mean_user_degree - 1.6).abs() < 1e-12);
        assert_eq!(stats.uncovered_users(), 0);
        // Sessions: s1 has 2 users, s2 has 3.
        assert_eq!(stats.session_demand, vec![2, 3]);
        assert_eq!(stats.peak_session_demand(), 3);
        // Rate mix: 3 Mbps ×2 (a1-u1, a2-u5), 4 ×3, 5 ×2, 6 ×1.
        let counts: Vec<usize> = stats.rate_histogram.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![2, 3, 2, 1]);
        assert_eq!(stats.resident_bytes_est, inst.resident_bytes_estimate());
        assert!(stats.resident_bytes_est > 0);
    }

    #[test]
    fn empty_instance_stats() {
        let mut b = InstanceBuilder::new();
        b.add_session(Kbps::from_mbps(1));
        b.add_ap(Load::ONE);
        let inst = b.build().unwrap();
        let stats = InstanceStats::of(&inst);
        assert_eq!(stats.n_links, 0);
        assert_eq!(stats.mean_user_degree, 0.0);
        assert_eq!(stats.uncovered_users(), 0);
        assert_eq!(stats.peak_session_demand(), 0);
    }

    #[test]
    fn uncovered_users_counted() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(Kbps::from_mbps(1));
        b.add_ap(Load::ONE);
        b.add_user(s);
        let inst = b.build().unwrap();
        let stats = InstanceStats::of(&inst);
        assert_eq!(stats.uncovered_users(), 1);
        assert_eq!(stats.degree_histogram, vec![1]);
    }
}
