//! Common solution and error types shared by the solvers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assoc::Association;
use crate::ids::UserId;
use crate::instance::Instance;
use crate::load::Load;

/// Which objective a solution optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize the number of satisfied users.
    Mnu,
    /// Minimize the maximum AP load (serving everyone).
    Bla,
    /// Minimize the total AP load (serving everyone).
    Mla,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Mnu => write!(f, "MNU"),
            Objective::Bla => write!(f, "BLA"),
            Objective::Mla => write!(f, "MLA"),
        }
    }
}

/// The outcome of a solver run, with the realized (Definition 1) load
/// metrics of the produced association.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The objective that was optimized.
    pub objective: Objective,
    /// Who associates where (unsatisfied users are `None`).
    pub association: Association,
    /// Users receiving service.
    pub satisfied: usize,
    /// Realized total multicast load over all APs.
    pub total_load: Load,
    /// Realized maximum AP multicast load.
    pub max_load: Load,
    /// The covering-model objective value, when the solver went through a
    /// reduction (total model cost for MLA, max group cost for BLA, spent
    /// model budget for MNU). The realized metrics can be *smaller*: if two
    /// sets for the same (AP, session) are chosen, the AP really transmits
    /// once, at the lower rate.
    pub model_cost: Option<Load>,
}

impl Solution {
    /// Evaluates `association` under `objective` against `inst`.
    pub fn evaluate(
        objective: Objective,
        association: Association,
        inst: &Instance,
        model_cost: Option<Load>,
    ) -> Solution {
        let loads = association.loads(inst);
        Solution {
            objective,
            satisfied: association.satisfied_count(),
            total_load: loads.iter().copied().sum(),
            max_load: loads.into_iter().max().unwrap_or(Load::ZERO),
            association,
            model_cost,
        }
    }
}

/// Errors from the centralized solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Some users cannot hear any AP; the full-coverage objectives
    /// (BLA, MLA) are infeasible.
    Uncoverable {
        /// The users no AP can reach.
        users: Vec<UserId>,
    },
    /// No candidate budget grid entry produced a full cover (BLA).
    NoFeasibleBudget,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Uncoverable { users } => {
                write!(f, "{} user(s) cannot hear any AP", users.len())
            }
            SolveError::NoFeasibleBudget => {
                write!(f, "no candidate budget yielded a complete cover")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure1_instance;
    use crate::ids::ApId;
    use crate::rate::Kbps;

    #[test]
    fn objective_display() {
        assert_eq!(Objective::Mnu.to_string(), "MNU");
        assert_eq!(Objective::Bla.to_string(), "BLA");
        assert_eq!(Objective::Mla.to_string(), "MLA");
    }

    #[test]
    fn evaluate_computes_realized_metrics() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let assoc = Association::from_vec(vec![
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(1)),
            Some(ApId(1)),
        ]);
        let sol = Solution::evaluate(Objective::Bla, assoc, &inst, None);
        assert_eq!(sol.satisfied, 5);
        assert_eq!(sol.max_load, Load::from_ratio(1, 2));
        assert_eq!(
            sol.total_load,
            Load::from_ratio(1, 2) + Load::from_ratio(1, 3)
        );
        assert_eq!(sol.model_cost, None);
    }
}
