//! Transmission rates and the 802.11a rate–distance model (paper Table 1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A data rate in kilobits per second.
///
/// The model uses kbps integers so that load fractions
/// (`session_kbps / tx_kbps`) stay exactly rational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Kbps(pub u32);

impl Kbps {
    /// Converts whole megabits per second.
    pub const fn from_mbps(mbps: u32) -> Kbps {
        Kbps(mbps * 1000)
    }

    /// The rate in Mbps (lossy, for display).
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for Kbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}Mbps", self.0 / 1000)
        } else {
            write!(f, "{}kbps", self.0)
        }
    }
}

/// How multicast transmission rates may be chosen (§3.1).
///
/// The paper assumes multi-rate MAC-layer multicast is available (citing
/// Chou & Misra), but notes all three problems remain NP-hard — and its
/// algorithms still beat SSA — when broadcast is pinned to the basic rate,
/// as plain 802.11 requires. `BasicOnly` models that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RatePolicy {
    /// An AP may multicast at any supported rate every member can decode.
    #[default]
    MultiRate,
    /// Multicast is always transmitted at the basic (lowest) rate.
    BasicOnly,
}

/// One row of a rate table: a rate usable up to `max_distance_m` meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateStep {
    /// The transmission rate.
    pub rate: Kbps,
    /// Maximum sender–receiver distance (meters) at which the rate holds.
    pub max_distance_m: f64,
}

/// A discrete rate–distance staircase: the maximum possible data rate of a
/// link as a function of distance.
///
/// Invariants (checked by [`RateTable::new`]): rates strictly increase while
/// distance thresholds strictly decrease — a shorter link always supports a
/// rate at least as high.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<RateStep>", into = "Vec<RateStep>")]
pub struct RateTable {
    /// Sorted by ascending rate (descending distance).
    steps: Vec<RateStep>,
}

impl From<RateTable> for Vec<RateStep> {
    fn from(t: RateTable) -> Self {
        t.steps
    }
}

impl TryFrom<Vec<RateStep>> for RateTable {
    type Error = RateTableError;

    fn try_from(steps: Vec<RateStep>) -> Result<Self, Self::Error> {
        RateTable::new(steps)
    }
}

/// Errors constructing a [`RateTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateTableError {
    /// The step list was empty.
    Empty,
    /// Rates must strictly increase while distances strictly decrease.
    NotMonotonic {
        /// Index of the first offending step.
        at: usize,
    },
    /// A zero rate or non-positive distance was supplied.
    InvalidStep {
        /// Index of the offending step.
        at: usize,
    },
}

impl fmt::Display for RateTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateTableError::Empty => write!(f, "rate table has no steps"),
            RateTableError::NotMonotonic { at } => write!(
                f,
                "rate table steps must have strictly increasing rates and strictly decreasing distances (violated at step {at})"
            ),
            RateTableError::InvalidStep { at } => {
                write!(f, "rate table step {at} has a zero rate or non-positive distance")
            }
        }
    }
}

impl std::error::Error for RateTableError {}

impl RateTable {
    /// Builds a table from steps in any order.
    ///
    /// # Errors
    ///
    /// See [`RateTableError`].
    pub fn new(mut steps: Vec<RateStep>) -> Result<RateTable, RateTableError> {
        if steps.is_empty() {
            return Err(RateTableError::Empty);
        }
        steps.sort_by_key(|a| a.rate);
        for (i, s) in steps.iter().enumerate() {
            if s.rate.0 == 0
                || s.max_distance_m.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            {
                return Err(RateTableError::InvalidStep { at: i });
            }
        }
        for i in 1..steps.len() {
            if steps[i].rate <= steps[i - 1].rate
                || steps[i].max_distance_m >= steps[i - 1].max_distance_m
            {
                return Err(RateTableError::NotMonotonic { at: i });
            }
        }
        Ok(RateTable { steps })
    }

    /// The paper's Table 1 — IEEE 802.11a rates and distance thresholds
    /// (Manshaei & Turletti, IST 2003):
    ///
    /// | Rate (Mbps)   | 6   | 12  | 18  | 24 | 36 | 48 | 54 |
    /// |---------------|-----|-----|-----|----|----|----|----|
    /// | Threshold (m) | 200 | 145 | 105 | 85 | 60 | 40 | 35 |
    pub fn ieee80211a() -> RateTable {
        RateTable::new(vec![
            RateStep {
                rate: Kbps::from_mbps(6),
                max_distance_m: 200.0,
            },
            RateStep {
                rate: Kbps::from_mbps(12),
                max_distance_m: 145.0,
            },
            RateStep {
                rate: Kbps::from_mbps(18),
                max_distance_m: 105.0,
            },
            RateStep {
                rate: Kbps::from_mbps(24),
                max_distance_m: 85.0,
            },
            RateStep {
                rate: Kbps::from_mbps(36),
                max_distance_m: 60.0,
            },
            RateStep {
                rate: Kbps::from_mbps(48),
                max_distance_m: 40.0,
            },
            RateStep {
                rate: Kbps::from_mbps(54),
                max_distance_m: 35.0,
            },
        ])
        .expect("Table 1 constants are monotonic")
    }

    /// The steps, sorted by ascending rate.
    pub fn steps(&self) -> &[RateStep] {
        &self.steps
    }

    /// All supported rates, ascending.
    pub fn rates(&self) -> impl Iterator<Item = Kbps> + '_ {
        self.steps.iter().map(|s| s.rate)
    }

    /// The basic (lowest) rate.
    pub fn basic_rate(&self) -> Kbps {
        self.steps[0].rate
    }

    /// The top rate.
    pub fn max_rate(&self) -> Kbps {
        self.steps[self.steps.len() - 1].rate
    }

    /// The radio range: beyond this distance no rate is available.
    pub fn range_m(&self) -> f64 {
        self.steps[0].max_distance_m
    }

    /// The maximum possible data rate at `distance_m` meters, or `None` if
    /// the link is out of range.
    pub fn rate_at(&self, distance_m: f64) -> Option<Kbps> {
        self.steps
            .iter()
            .rev()
            .find(|s| distance_m <= s.max_distance_m)
            .map(|s| s.rate)
    }

    /// Scales every distance threshold by `factor` (adaptive power control:
    /// a higher transmit power extends each rate's reach).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scale_distances(&self, factor: f64) -> RateTable {
        assert!(
            factor.is_finite() && factor > 0.0,
            "power scale factor must be positive and finite"
        );
        RateTable {
            steps: self
                .steps
                .iter()
                .map(|s| RateStep {
                    rate: s.rate,
                    max_distance_m: s.max_distance_m * factor,
                })
                .collect(),
        }
    }
}

impl Default for RateTable {
    fn default() -> Self {
        RateTable::ieee80211a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let t = RateTable::ieee80211a();
        assert_eq!(t.steps().len(), 7);
        assert_eq!(t.basic_rate(), Kbps::from_mbps(6));
        assert_eq!(t.max_rate(), Kbps::from_mbps(54));
        assert_eq!(t.range_m(), 200.0);
    }

    #[test]
    fn rate_lookup_follows_staircase() {
        let t = RateTable::ieee80211a();
        assert_eq!(t.rate_at(0.0), Some(Kbps::from_mbps(54)));
        assert_eq!(t.rate_at(35.0), Some(Kbps::from_mbps(54)));
        assert_eq!(t.rate_at(35.1), Some(Kbps::from_mbps(48)));
        assert_eq!(t.rate_at(60.0), Some(Kbps::from_mbps(36)));
        assert_eq!(t.rate_at(84.9), Some(Kbps::from_mbps(24)));
        assert_eq!(t.rate_at(100.0), Some(Kbps::from_mbps(18)));
        assert_eq!(t.rate_at(145.0), Some(Kbps::from_mbps(12)));
        assert_eq!(t.rate_at(199.99), Some(Kbps::from_mbps(6)));
        assert_eq!(t.rate_at(200.0), Some(Kbps::from_mbps(6)));
        assert_eq!(t.rate_at(200.01), None);
    }

    #[test]
    fn rejects_non_monotonic_tables() {
        let err = RateTable::new(vec![
            RateStep {
                rate: Kbps(1000),
                max_distance_m: 100.0,
            },
            RateStep {
                rate: Kbps(2000),
                max_distance_m: 100.0,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, RateTableError::NotMonotonic { at: 1 }));
        assert!(matches!(
            RateTable::new(vec![]).unwrap_err(),
            RateTableError::Empty
        ));
        assert!(matches!(
            RateTable::new(vec![RateStep {
                rate: Kbps(0),
                max_distance_m: 10.0
            }])
            .unwrap_err(),
            RateTableError::InvalidStep { at: 0 }
        ));
    }

    #[test]
    fn accepts_unsorted_input() {
        let t = RateTable::new(vec![
            RateStep {
                rate: Kbps(2000),
                max_distance_m: 50.0,
            },
            RateStep {
                rate: Kbps(1000),
                max_distance_m: 100.0,
            },
        ])
        .unwrap();
        assert_eq!(t.basic_rate(), Kbps(1000));
    }

    #[test]
    fn power_scaling_extends_range() {
        let t = RateTable::ieee80211a().scale_distances(1.5);
        assert_eq!(t.range_m(), 300.0);
        assert_eq!(t.rate_at(52.5), Some(Kbps::from_mbps(54)));
        assert_eq!(t.rate_at(250.0), Some(Kbps::from_mbps(6)));
    }

    #[test]
    fn kbps_display_and_conversion() {
        assert_eq!(Kbps::from_mbps(6).to_string(), "6Mbps");
        assert_eq!(Kbps(1500).to_string(), "1500kbps");
        assert!((Kbps(1500).as_mbps_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_validates() {
        let t = RateTable::ieee80211a();
        let json = serde_json::to_string(&t).unwrap();
        let back: RateTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        let bad = r#"[{"rate":1000,"max_distance_m":100.0},{"rate":2000,"max_distance_m":150.0}]"#;
        assert!(serde_json::from_str::<RateTable>(bad).is_err());
    }
}
