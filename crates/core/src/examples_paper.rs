//! The paper's worked-example scenarios (Figures 1 and 4), used throughout
//! the test suite and the quickstart example.

use crate::ids::{ApId, UserId};
use crate::instance::{Instance, InstanceBuilder};
use crate::load::Load;
use crate::rate::Kbps;

/// Builds the Figure 1 WLAN: two APs, five users, two sessions.
///
/// * From `a1`: rates to `u1..u5` are 3, 6, 4, 4, 4 Mbps.
/// * From `a2`: rates to `u3, u4, u5` are 5, 5, 3 Mbps (`u1`, `u2`
///   unreachable).
/// * `u1`, `u3` request session `s1`; `u2`, `u4`, `u5` request `s2`.
/// * Both APs have multicast budget 1.
///
/// Both sessions stream at `session_rate` — the paper uses 3 Mbps for the
/// MNU walk-through and 1 Mbps for BLA/MLA.
///
/// Ids map as `a1 → ApId(0)`, `u1 → UserId(0)`, etc.
pub fn figure1_instance(session_rate: Kbps) -> Instance {
    let mut b = InstanceBuilder::new();
    b.supported_rates([
        Kbps::from_mbps(3),
        Kbps::from_mbps(4),
        Kbps::from_mbps(5),
        Kbps::from_mbps(6),
    ]);
    let s1 = b.add_session(session_rate);
    let s2 = b.add_session(session_rate);
    let a1 = b.add_ap(Load::ONE);
    let a2 = b.add_ap(Load::ONE);
    let u1 = b.add_user(s1);
    let u2 = b.add_user(s2);
    let u3 = b.add_user(s1);
    let u4 = b.add_user(s2);
    let u5 = b.add_user(s2);
    b.link(a1, u1, Kbps::from_mbps(3)).unwrap();
    b.link(a1, u2, Kbps::from_mbps(6)).unwrap();
    b.link(a1, u3, Kbps::from_mbps(4)).unwrap();
    b.link(a1, u4, Kbps::from_mbps(4)).unwrap();
    b.link(a1, u5, Kbps::from_mbps(4)).unwrap();
    b.link(a2, u3, Kbps::from_mbps(5)).unwrap();
    b.link(a2, u4, Kbps::from_mbps(5)).unwrap();
    b.link(a2, u5, Kbps::from_mbps(3)).unwrap();
    b.build().expect("figure 1 instance is valid")
}

/// Builds the Figure 4 WLAN — the counterexample showing that simultaneous
/// local decisions may oscillate forever.
///
/// * `a1` reaches `u1, u2, u3` at 5, 4, 4 Mbps.
/// * `a2` reaches `u2, u3, u4` at 4, 4, 5 Mbps.
/// * All four users request the same 1 Mbps session.
///
/// (The paper's figure labels the fourth user `u5` in one place and `u4`
/// in another; we use `u4`.) The oscillating start state associates
/// `u1, u2 → a1` and `u3, u4 → a2`; `u2` and `u3` then each see a
/// unilateral improvement and swap forever.
pub fn figure4_instance() -> Instance {
    let mut b = InstanceBuilder::new();
    b.supported_rates([Kbps::from_mbps(4), Kbps::from_mbps(5)]);
    let s1 = b.add_session(Kbps::from_mbps(1));
    let a1 = b.add_ap(Load::ONE);
    let a2 = b.add_ap(Load::ONE);
    let u1 = b.add_user(s1);
    let u2 = b.add_user(s1);
    let u3 = b.add_user(s1);
    let u4 = b.add_user(s1);
    b.link(a1, u1, Kbps::from_mbps(5)).unwrap();
    b.link(a1, u2, Kbps::from_mbps(4)).unwrap();
    b.link(a1, u3, Kbps::from_mbps(4)).unwrap();
    b.link(a2, u2, Kbps::from_mbps(4)).unwrap();
    b.link(a2, u3, Kbps::from_mbps(4)).unwrap();
    b.link(a2, u4, Kbps::from_mbps(5)).unwrap();
    b.build().expect("figure 4 instance is valid")
}

/// The oscillating start state for [`figure4_instance`]:
/// `u1, u2 → a1`; `u3, u4 → a2`.
pub fn figure4_start() -> crate::assoc::Association {
    crate::assoc::Association::from_vec(vec![
        Some(ApId(0)),
        Some(ApId(0)),
        Some(ApId(1)),
        Some(ApId(1)),
    ])
}

/// Convenience: the paper's user/AP names for tests (`u(1)` = `UserId(0)`).
pub fn u(paper_index: u32) -> UserId {
    assert!(paper_index >= 1, "paper indices are 1-based");
    UserId(paper_index - 1)
}

/// Convenience: `a(1)` = `ApId(0)`.
pub fn a(paper_index: u32) -> ApId {
    assert!(paper_index >= 1, "paper indices are 1-based");
    ApId(paper_index - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_links_match_paper() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        assert_eq!(inst.link_rate(a(1), u(1)), Some(Kbps::from_mbps(3)));
        assert_eq!(inst.link_rate(a(1), u(2)), Some(Kbps::from_mbps(6)));
        assert_eq!(inst.link_rate(a(2), u(1)), None);
        assert_eq!(inst.link_rate(a(2), u(5)), Some(Kbps::from_mbps(3)));
        assert_eq!(inst.n_sessions(), 2);
        assert_eq!(inst.user_session(u(1)), inst.user_session(u(3)));
        assert_ne!(inst.user_session(u(1)), inst.user_session(u(2)));
    }

    #[test]
    fn figure4_symmetric_start_load() {
        let inst = figure4_instance();
        let start = figure4_start();
        // Paper: each AP's load is 1/4; total 1/2.
        let loads = start.loads(&inst);
        assert_eq!(loads[0], Load::from_ratio(1, 4));
        assert_eq!(loads[1], Load::from_ratio(1, 4));
        assert_eq!(start.total_load(&inst), Load::from_ratio(1, 2));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_paper_index_panics() {
        let _ = u(0);
    }
}
