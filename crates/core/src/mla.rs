//! Centralized **MLA** — Minimize the Load of APs (paper §6.1).
//!
//! MLA reduces to weighted Set Cover (Theorem 5); the solver is the greedy
//! `CostSC` (Fig. 8), an `ln(n) + 1` approximation (Theorem 6). NP-hardness
//! follows from Set Cover (Theorem 9).

use mcast_covering::{greedy_set_cover, primal_dual_set_cover};

use crate::instance::Instance;
use crate::reduction::Reduction;
use crate::solution::{Objective, Solution, SolveError};

/// Which set-cover algorithm drives MLA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MlaAlgorithm {
    /// The cost-effectiveness greedy (`CostSC`, Fig. 8): `ln(n) + 1`.
    #[default]
    Greedy,
    /// The primal–dual layering algorithm the paper's §6.1 points at:
    /// an `f`-approximation, constant when each user hears a bounded
    /// number of APs.
    PrimalDual,
}

/// Solves MLA: associates every user so that the *total* multicast load
/// over all APs is (approximately) minimized.
///
/// Budgets are not constraints for MLA — the objective presses loads down
/// anyway; the paper's evaluation uses a loose 0.9 budget that is never
/// binding for this objective.
///
/// # Errors
///
/// [`SolveError::Uncoverable`] if some user is out of range of every AP.
///
/// # Example
///
/// ```
/// use mcast_core::{examples_paper, solve_mla, Kbps, Load};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = examples_paper::figure1_instance(Kbps::from_mbps(1));
/// let sol = solve_mla(&inst)?;
/// assert_eq!(sol.total_load, Load::from_ratio(7, 12)); // the paper's optimum
/// # Ok(())
/// # }
/// ```
pub fn solve_mla(inst: &Instance) -> Result<Solution, SolveError> {
    solve_mla_with(inst, MlaAlgorithm::Greedy)
}

/// Solves MLA with an explicit choice of set-cover algorithm.
///
/// # Errors
///
/// [`SolveError::Uncoverable`] if some user is out of range of every AP.
pub fn solve_mla_with(inst: &Instance, algorithm: MlaAlgorithm) -> Result<Solution, SolveError> {
    let red = Reduction::build(inst);
    let uncoverable = || SolveError::Uncoverable {
        users: red.uncoverable_users(),
    };
    let (model_cost, assoc) = match algorithm {
        MlaAlgorithm::Greedy => {
            let cover = greedy_set_cover(red.system()).map_err(|_| uncoverable())?;
            (*cover.total_cost(), red.to_association(&cover))
        }
        MlaAlgorithm::PrimalDual => {
            let out = primal_dual_set_cover(red.system()).map_err(|_| uncoverable())?;
            (*out.cover.total_cost(), red.to_association(&out.cover))
        }
    };
    Ok(Solution::evaluate(
        Objective::Mla,
        assoc,
        inst,
        Some(model_cost),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance};
    use crate::instance::InstanceBuilder;
    use crate::load::Load;
    use crate::rate::Kbps;

    /// Paper §6.1 "Example – Centralized MLA": greedy picks S4 then S2 —
    /// all users on a1, total load 7/12, which is optimal.
    #[test]
    fn figure1_walkthrough() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let sol = solve_mla(&inst).unwrap();
        assert_eq!(sol.satisfied, 5);
        assert_eq!(sol.total_load, Load::from_ratio(7, 12));
        assert_eq!(sol.model_cost, Some(Load::from_ratio(7, 12)));
        // All users on a1.
        for ap in sol.association.iter() {
            assert_eq!(ap, Some(a(1)));
        }
        assert!(sol.association.is_feasible(&inst));
    }

    #[test]
    fn uncoverable_user_is_an_error() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(Kbps::from_mbps(1));
        b.add_ap(Load::ONE);
        let lonely = b.add_user(s);
        let inst = b.build().unwrap();
        match solve_mla(&inst).unwrap_err() {
            SolveError::Uncoverable { users } => assert_eq!(users, vec![lonely]),
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// Realized load can beat the covering model: two sets on the same
    /// (AP, session) merge into one real transmission at the lower rate.
    #[test]
    fn realized_load_never_exceeds_model_cost() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let sol = solve_mla(&inst).unwrap();
        assert!(sol.total_load <= sol.model_cost.unwrap());
    }

    /// The primal–dual variant also serves everyone, within its
    /// f-approximation of the greedy's ballpark.
    #[test]
    fn primal_dual_variant_covers_everyone() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let sol = solve_mla_with(&inst, MlaAlgorithm::PrimalDual).unwrap();
        assert_eq!(sol.satisfied, 5);
        assert!(sol.association.is_feasible(&inst));
        // On Figure 1 f is small; the result must stay within f × OPT =
        // 8 × 7/12 trivially, and in practice close to the greedy.
        assert!(sol.total_load <= Load::from_ratio(2, 1));
    }
}
