//! **SSA** — the Signal-Strength Association baseline (paper §7).
//!
//! Plain 802.11 behaviour: every user associates with the AP whose signal
//! is strongest, regardless of load. Users are admitted in id order; a user
//! whose strongest AP cannot take it without exceeding the multicast budget
//! is left unsatisfied (SSA users do not try a second-best AP — see the
//! paper's §4.1 example, where `u1, u2, u5` "can only be associated with
//! `a1`").

use crate::assoc::LoadLedger;
use crate::ids::ApId;
use crate::instance::Instance;
use crate::solution::{Objective, Solution};

/// The strongest-signal AP of user `u`, if any is in range.
/// Ties break toward the lower `ApId` (deterministic).
pub fn strongest_ap(inst: &Instance, u: crate::ids::UserId) -> Option<ApId> {
    inst.candidate_aps(u)
        .iter()
        .map(|&(a, _)| {
            let sig = inst.signal(a, u).expect("candidate implies link");
            (sig, std::cmp::Reverse(a))
        })
        .max()
        .map(|(_, std::cmp::Reverse(a))| a)
}

/// Runs the SSA baseline under `objective`'s reporting (the association
/// itself does not depend on the objective; only the reported metrics
/// interpretation does).
pub fn solve_ssa(inst: &Instance, objective: Objective) -> Solution {
    let mut ledger = LoadLedger::fresh(inst);
    for u in inst.users() {
        if let Some(a) = strongest_ap(inst, u) {
            if let Some(load) = ledger.load_if_joined(u, a) {
                if load <= inst.budget(a) {
                    ledger.join(u, a);
                }
            }
        }
    }
    let assoc = ledger.into_association();
    debug_assert!(assoc.is_feasible(inst));
    Solution::evaluate(objective, assoc, inst, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::{a, figure1_instance, u};
    use crate::ids::UserId;
    use crate::instance::{InstanceBuilder, SignalStrength};
    use crate::load::Load;
    use crate::rate::Kbps;

    /// Paper §4.1: under SSA, u1, u2, u5 hear a1 strongest and u3, u4 hear
    /// a2 strongest; if u1 and u3 associate first, only 2 users get
    /// service. With the default rate-as-signal and id-order admission,
    /// u1 claims a1 (load 1) and u2 is blocked; u3 and u4 get a2, u5 is
    /// blocked by budget — SSA serves fewer users than MNU's 3.
    #[test]
    fn figure1_ssa_underperforms_mnu() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let sol = solve_ssa(&inst, Objective::Mnu);
        let mnu = crate::mnu::solve_mnu(&inst);
        assert!(sol.satisfied < mnu.satisfied);
        assert!(sol.association.is_feasible(&inst));
    }

    /// Signal strength decides, not rate: a stronger-signal lower-rate AP
    /// wins.
    #[test]
    fn follows_signal_not_rate() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(3), Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let us = b.add_user(s);
        b.link_with_signal(a1, us, Kbps::from_mbps(6), SignalStrength(10))
            .unwrap();
        b.link_with_signal(a2, us, Kbps::from_mbps(3), SignalStrength(20))
            .unwrap();
        let inst = b.build().unwrap();
        assert_eq!(strongest_ap(&inst, us), Some(a2));
        let sol = solve_ssa(&inst, Objective::Mla);
        assert_eq!(sol.association.ap_of(us), Some(a2));
        assert_eq!(sol.total_load, Load::from_ratio(1, 3));
    }

    #[test]
    fn signal_ties_break_to_lower_ap_id() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let a1 = b.add_ap(Load::ONE);
        let _a2 = b.add_ap(Load::ONE);
        let us = b.add_user(s);
        b.link_with_signal(a1, us, Kbps::from_mbps(6), SignalStrength(5))
            .unwrap();
        b.link_with_signal(_a2, us, Kbps::from_mbps(6), SignalStrength(5))
            .unwrap();
        let inst = b.build().unwrap();
        assert_eq!(strongest_ap(&inst, us), Some(a1));
    }

    #[test]
    fn out_of_range_user_unsatisfied() {
        let mut b = InstanceBuilder::new();
        let s = b.add_session(Kbps::from_mbps(1));
        b.add_ap(Load::ONE);
        b.add_user(s);
        let inst = b.build().unwrap();
        assert_eq!(strongest_ap(&inst, UserId(0)), None);
        let sol = solve_ssa(&inst, Objective::Mnu);
        assert_eq!(sol.satisfied, 0);
    }

    /// With 1 Mbps sessions every Figure 1 user fits under SSA, but the
    /// load lands worse than MLA's optimum.
    #[test]
    fn figure1_ssa_total_load_worse_than_mla() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let ssa = solve_ssa(&inst, Objective::Mla);
        let mla = crate::mla::solve_mla(&inst).unwrap();
        assert_eq!(ssa.satisfied, 5);
        assert!(ssa.total_load >= mla.total_load);
    }

    /// Admission is in user-id order: the first user to claim a budget-
    /// constrained AP wins it.
    #[test]
    fn admission_order_is_user_id() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let sol = solve_ssa(&inst, Objective::Mnu);
        // u1 (id 0) claims a1 at rate 3 -> load 1; u2 (stronger rate 6,
        // same AP) is then blocked: 1 + 3/6 > 1.
        assert_eq!(sol.association.ap_of(u(1)), Some(a(1)));
        assert_eq!(sol.association.ap_of(u(2)), None);
    }
}
