//! Pre-optimization reference implementations of the distributed engine,
//! kept as byte-exact oracles (the PR-2 discipline, see
//! `crates/covering/src/reference.rs` for the covering-layer analogue).
//!
//! Three oracles live here, each replaced by a fast path elsewhere:
//!
//! * [`ReferenceLedger`] — the original incremental load state built on a
//!   `BTreeMap<Kbps, u32>` rate multiset per (AP, session). The fast
//!   [`LoadLedger`](crate::LoadLedger) replaces the maps with fixed-size
//!   count arrays over the instance's discrete rate set.
//! * [`local_decision_reference`] — the original decision rule, which for
//!   [`Policy::MinMaxVector`] rebuilds and sorts the full neighbor load
//!   vector for every candidate (O(k log k) per candidate). The fast rule
//!   sorts the baseline once and applies each candidate as a two-position
//!   perturbation.
//! * [`run_distributed_reference`] — the original convergence loop, which
//!   re-evaluates every user every round and rebuilds the decision order
//!   per round. The fast loop computes the order once and keeps a
//!   dirty-user worklist.
//!
//! `repro bench` times the fast paths against these and asserts the
//! outputs are identical; the equivalence proptests in
//! `crates/core/tests/properties.rs` pin the same on random instances.

use std::collections::{BTreeMap, HashSet};

use crate::assoc::Association;
use crate::distributed::{
    vector_improves, ApStateView, DistributedConfig, DistributedOutcome, ExecutionMode, Policy,
};
use crate::ids::{ApId, SessionId, UserId};
use crate::instance::Instance;
use crate::load::Load;
use crate::rate::Kbps;

/// The original incremental load state: per (AP, session), a
/// `BTreeMap<Kbps, u32>` multiset of member multicast rates.
///
/// Semantically identical to [`LoadLedger`](crate::LoadLedger); kept as
/// the equivalence oracle for the fixed-size count-array fast path.
#[derive(Debug, Clone)]
pub struct ReferenceLedger<'a> {
    inst: &'a Instance,
    assoc: Association,
    /// Per (AP, session): multiset of member multicast rates.
    members: Vec<BTreeMap<Kbps, u32>>,
    ap_load: Vec<Load>,
}

impl<'a> ReferenceLedger<'a> {
    /// Starts from an existing association.
    ///
    /// # Panics
    ///
    /// Panics if the association is structurally invalid for `inst`.
    pub fn new(inst: &'a Instance, assoc: Association) -> ReferenceLedger<'a> {
        assert_eq!(assoc.len(), inst.n_users(), "association size");
        let mut ledger = ReferenceLedger {
            inst,
            assoc: Association::empty(inst.n_users()),
            members: vec![BTreeMap::new(); inst.n_aps() * inst.n_sessions()],
            ap_load: vec![Load::ZERO; inst.n_aps()],
        };
        for (u, ap) in assoc.iter().enumerate() {
            if let Some(a) = ap {
                ledger.join(UserId(u as u32), a);
            }
        }
        ledger
    }

    /// Starts with every user unsatisfied.
    pub fn fresh(inst: &'a Instance) -> ReferenceLedger<'a> {
        ReferenceLedger::new(inst, Association::empty(inst.n_users()))
    }

    fn slot(&self, a: ApId, s: SessionId) -> usize {
        a.index() * self.inst.n_sessions() + s.index()
    }

    /// The load AP `a` currently carries.
    pub fn ap_load(&self, a: ApId) -> Load {
        self.ap_load[a.index()]
    }

    /// The AP user `u` is currently associated with.
    pub fn ap_of(&self, u: UserId) -> Option<ApId> {
        self.assoc.ap_of(u)
    }

    /// The current association.
    pub fn association(&self) -> &Association {
        &self.assoc
    }

    /// Consumes the ledger, returning the association.
    pub fn into_association(self) -> Association {
        self.assoc
    }

    /// Total load over all APs.
    pub fn total_load(&self) -> Load {
        self.ap_load.iter().copied().sum()
    }

    /// Maximum AP load.
    pub fn max_load(&self) -> Load {
        self.ap_load.iter().copied().max().unwrap_or(Load::ZERO)
    }

    /// The transmission rate AP `a` uses for session `s`, if it serves it.
    pub fn ap_session_rate(&self, a: ApId, s: SessionId) -> Option<Kbps> {
        self.members[self.slot(a, s)].keys().next().copied()
    }

    /// The load AP `a` would have if user `u` joined it (without joining).
    pub fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u)?;
        let stream = self.inst.session_rate(s);
        let cur = self.ap_session_rate(a, s);
        let new_tx = match cur {
            Some(tx) => tx.min(u_rate),
            None => u_rate,
        };
        let old_part = cur.map_or(Load::ZERO, |tx| Load::per_transmission(stream, tx));
        Some(self.ap_load[a.index()] - old_part + Load::per_transmission(stream, new_tx))
    }

    /// The current AP's load if `u` left it.
    pub fn load_if_left(&self, u: UserId) -> Option<Load> {
        let a = self.assoc.ap_of(u)?;
        let s = self.inst.user_session(u);
        let stream = self.inst.session_rate(s);
        let u_rate = self
            .inst
            .multicast_rate_to(a, u)
            .expect("associated user in range");
        let slot = &self.members[self.slot(a, s)];
        let cur_tx = *slot.keys().next().expect("member present");
        let old_part = Load::per_transmission(stream, cur_tx);
        // Remaining members after u leaves: remove one instance of u_rate.
        let new_tx = if slot[&u_rate] > 1 {
            Some(cur_tx) // another member shares u's rate; min unchanged
        } else {
            slot.keys().copied().find(|&r| r != u_rate).map(|r| {
                if u_rate == cur_tx {
                    r // u was the unique slowest; next-slowest takes over
                } else {
                    cur_tx
                }
            })
        };
        let new_part = new_tx.map_or(Load::ZERO, |tx| Load::per_transmission(stream, tx));
        Some(self.ap_load[a.index()] - old_part + new_part)
    }

    /// Associates `u` with `a`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is already associated or out of `a`'s range.
    pub fn join(&mut self, u: UserId, a: ApId) {
        assert!(self.assoc.ap_of(u).is_none(), "user {u} already associated");
        let new_load = self
            .load_if_joined(u, a)
            .unwrap_or_else(|| panic!("user {u} out of range of AP {a}"));
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u).expect("checked in range");
        let slot_idx = self.slot(a, s);
        *self.members[slot_idx].entry(u_rate).or_insert(0) += 1;
        self.ap_load[a.index()] = new_load;
        self.assoc.set(u, Some(a));
    }

    /// Disassociates `u` from its current AP.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not associated.
    pub fn leave(&mut self, u: UserId) {
        let new_load = self
            .load_if_left(u)
            .unwrap_or_else(|| panic!("user {u} is not associated"));
        let a = self.assoc.ap_of(u).expect("checked associated");
        let s = self.inst.user_session(u);
        let u_rate = self.inst.multicast_rate_to(a, u).expect("in range");
        let slot_idx = self.slot(a, s);
        let count = self.members[slot_idx].get_mut(&u_rate).expect("member");
        *count -= 1;
        if *count == 0 {
            self.members[slot_idx].remove(&u_rate);
        }
        self.ap_load[a.index()] = new_load;
        self.assoc.set(u, None);
    }

    /// Moves `u` to `a` (leaving its current AP first, if any).
    pub fn reassociate(&mut self, u: UserId, a: ApId) {
        if self.assoc.ap_of(u) == Some(a) {
            return;
        }
        if self.assoc.ap_of(u).is_some() {
            self.leave(u);
        }
        self.join(u, a);
    }

    /// The instance this ledger is built over.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }
}

impl ApStateView for ReferenceLedger<'_> {
    fn instance(&self) -> &Instance {
        ReferenceLedger::instance(self)
    }
    fn ap_of(&self, u: UserId) -> Option<ApId> {
        ReferenceLedger::ap_of(self, u)
    }
    fn ap_load(&self, a: ApId) -> Load {
        ReferenceLedger::ap_load(self, a)
    }
    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        ReferenceLedger::load_if_joined(self, u, a)
    }
    fn load_if_left(&self, u: UserId) -> Option<Load> {
        ReferenceLedger::load_if_left(self, u)
    }
}

/// The original decision rule: for [`Policy::MinMaxVector`], builds and
/// sorts the full neighbor load vector for every candidate.
///
/// Semantically identical to
/// [`local_decision_with`](crate::local_decision_with); kept as the
/// equivalence oracle for the delta-evaluation fast path.
pub fn local_decision_reference<V: ApStateView>(
    ledger: &V,
    u: UserId,
    policy: Policy,
    respect_budget: bool,
    hysteresis: Load,
) -> Option<ApId> {
    let inst = ledger.instance();
    let current = ledger.ap_of(u);

    // Feasible candidates (excluding the current AP — staying is the
    // baseline, not a move), drawn from the APs the view has data for.
    let reachable = ledger.reachable_aps(u);
    let candidates = reachable.iter().filter_map(|&a| {
        if Some(a) == current {
            return None;
        }
        let joined = ledger.load_if_joined(u, a)?;
        if respect_budget && joined > inst.budget(a) {
            return None;
        }
        Some(a)
    });

    match policy {
        Policy::MinTotalLoad => {
            let leave_delta = match current {
                Some(cur) => ledger.load_if_left(u).expect("associated") - ledger.ap_load(cur),
                None => Load::ZERO,
            };
            let best = candidates
                .map(|a| {
                    let join_delta =
                        ledger.load_if_joined(u, a).expect("filtered") - ledger.ap_load(a);
                    let delta = join_delta + leave_delta;
                    let signal = inst.signal(a, u).expect("candidate implies link");
                    (delta, std::cmp::Reverse(signal), a)
                })
                .min();
            match (best, current) {
                (Some((delta, _, a)), Some(_)) if delta < -hysteresis => Some(a),
                (Some((_, _, a)), None) => Some(a),
                _ => None,
            }
        }
        Policy::MinMaxVector => {
            // Sorted non-increasing load vector of u's neighboring APs
            // under each hypothesis; lexicographically smaller wins.
            let neighbors: &[ApId] = &reachable;
            let vector_if = |target: Option<ApId>| -> Vec<Load> {
                let mut v: Vec<Load> = neighbors
                    .iter()
                    .map(|&b| {
                        if Some(b) == target {
                            ledger.load_if_joined(u, b).expect("filtered")
                        } else if Some(b) == current && target.is_some() {
                            ledger.load_if_left(u).expect("associated")
                        } else {
                            ledger.ap_load(b)
                        }
                    })
                    .collect();
                v.sort_unstable_by(|x, y| y.cmp(x));
                v
            };
            let stay = vector_if(None);
            let best = candidates
                .map(|a| {
                    let signal = inst.signal(a, u).expect("candidate implies link");
                    (vector_if(Some(a)), std::cmp::Reverse(signal), a)
                })
                .min();
            match (best, current) {
                (Some((v, _, a)), Some(_)) if vector_improves(&stay, &v, hysteresis) => Some(a),
                (Some((_, _, a)), None) => Some(a),
                _ => None,
            }
        }
    }
}

/// The original convergence loop: every user re-evaluated every round, the
/// decision order rebuilt per round, over a [`ReferenceLedger`].
///
/// Semantically identical to
/// [`run_distributed`](crate::run_distributed); kept as the equivalence
/// oracle for the dirty-worklist fast path.
///
/// # Panics
///
/// Panics if `initial` has the wrong size or associates a user with an AP
/// out of its range.
pub fn run_distributed_reference(
    inst: &Instance,
    config: &DistributedConfig,
    initial: Association,
) -> DistributedOutcome {
    let mut ledger = ReferenceLedger::new(inst, initial);
    let mut moves = 0usize;
    let mut seen: HashSet<Vec<Option<ApId>>> = HashSet::new();
    seen.insert(ledger.association().to_vec());

    for round in 1..=config.max_rounds {
        let mut changed = false;
        match config.mode {
            ExecutionMode::Serial => {
                for u in config.order.order(inst.n_users()) {
                    if let Some(a) = local_decision_reference(
                        &ledger,
                        u,
                        config.policy,
                        config.respect_budget,
                        config.hysteresis,
                    ) {
                        ledger.reassociate(u, a);
                        moves += 1;
                        changed = true;
                    }
                }
            }
            ExecutionMode::Simultaneous => {
                let snapshot = ledger.clone();
                let decisions: Vec<(UserId, ApId)> = inst
                    .users()
                    .filter_map(|u| {
                        local_decision_reference(
                            &snapshot,
                            u,
                            config.policy,
                            config.respect_budget,
                            config.hysteresis,
                        )
                        .map(|a| (u, a))
                    })
                    .collect();
                for (u, a) in decisions {
                    ledger.reassociate(u, a);
                    moves += 1;
                    changed = true;
                }
            }
        }

        if !changed {
            return DistributedOutcome {
                association: ledger.into_association(),
                rounds: round,
                moves,
                converged: true,
                cycle_detected: false,
            };
        }
        if !seen.insert(ledger.association().to_vec()) {
            // State repeats: a live oscillation.
            return DistributedOutcome {
                association: ledger.into_association(),
                rounds: round,
                moves,
                converged: false,
                cycle_detected: true,
            };
        }
    }

    DistributedOutcome {
        association: ledger.into_association(),
        rounds: config.max_rounds,
        moves,
        converged: false,
        cycle_detected: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples_paper::figure1_instance;
    use crate::run_distributed;

    #[test]
    fn reference_ledger_matches_batch_computation() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut ledger = ReferenceLedger::fresh(&inst);
        for (u, a) in [(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)] {
            ledger.join(UserId(u), ApId(a));
        }
        let assoc = ledger.association().clone();
        assert_eq!(ledger.ap_load(ApId(0)), assoc.ap_load(ApId(0), &inst));
        assert_eq!(ledger.ap_load(ApId(1)), assoc.ap_load(ApId(1), &inst));
        assert_eq!(ledger.total_load(), assoc.total_load(&inst));
        assert_eq!(ledger.max_load(), assoc.max_load(&inst));
    }

    #[test]
    fn reference_run_matches_fast_run_on_figure1() {
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
                let inst = figure1_instance(Kbps::from_mbps(1));
                let config = DistributedConfig {
                    policy,
                    mode,
                    ..DistributedConfig::default()
                };
                let fast = run_distributed(&inst, &config, Association::empty(inst.n_users()));
                let refr =
                    run_distributed_reference(&inst, &config, Association::empty(inst.n_users()));
                assert_eq!(fast.association, refr.association);
                assert_eq!(fast.rounds, refr.rounds);
                assert_eq!(fast.moves, refr.moves);
                assert_eq!(fast.converged, refr.converged);
                assert_eq!(fast.cycle_detected, refr.cycle_detected);
            }
        }
    }
}
