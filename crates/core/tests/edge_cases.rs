//! Edge cases of the core model and algorithms: boundaries, degenerate
//! shapes, heterogeneous sessions, and exact tie behavior.

use mcast_core::examples_paper::figure1_instance;
use mcast_core::{
    run_distributed, solve_bla, solve_mla, solve_mnu, solve_ssa, Association, DistributedConfig,
    Instance, InstanceBuilder, Kbps, Load, Objective, Policy, RatePolicy, UserId,
};

fn mbps(m: u32) -> Kbps {
    Kbps::from_mbps(m)
}

/// Budget exactly equal to the load: feasibility is `<=`, so it fits.
#[test]
fn budget_boundary_is_inclusive() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6)]);
    let s = b.add_session(mbps(3));
    let ap = b.add_ap(Load::from_ratio(1, 2)); // exactly 3/6
    let u = b.add_user(s);
    b.link(ap, u, mbps(6)).unwrap();
    let inst = b.build().unwrap();
    let sol = solve_mnu(&inst);
    assert_eq!(sol.satisfied, 1);
    assert_eq!(sol.total_load, Load::from_ratio(1, 2));

    // One kbps over the boundary and it no longer fits.
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6)]);
    let s = b.add_session(Kbps(3001));
    let ap = b.add_ap(Load::from_ratio(1, 2));
    let u = b.add_user(s);
    b.link(ap, u, mbps(6)).unwrap();
    let inst = b.build().unwrap();
    assert_eq!(solve_mnu(&inst).satisfied, 0);
}

/// Zero users: every solver returns an empty, feasible, zero-load answer.
#[test]
fn zero_users() {
    let mut b = InstanceBuilder::new();
    b.add_session(mbps(1));
    b.add_ap(Load::ONE);
    let inst = b.build().unwrap();
    assert_eq!(inst.n_users(), 0);
    let mla = solve_mla(&inst).unwrap();
    assert_eq!(mla.total_load, Load::ZERO);
    let bla = solve_bla(&inst).unwrap();
    assert_eq!(bla.max_load, Load::ZERO);
    assert_eq!(solve_mnu(&inst).satisfied, 0);
    assert_eq!(solve_ssa(&inst, Objective::Mla).satisfied, 0);
    let out = run_distributed(&inst, &DistributedConfig::default(), Association::empty(0));
    assert!(out.converged);
}

/// Sessions with different stream rates: the Figure 1 network where s1
/// streams at 2 Mbps and s2 at 1 Mbps — loads follow each session's rate.
#[test]
fn heterogeneous_session_rates_in_core() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(3), mbps(4), mbps(5), mbps(6)]);
    let s1 = b.add_session(mbps(2));
    let s2 = b.add_session(mbps(1));
    let a1 = b.add_ap(Load::ONE);
    let u1 = b.add_user(s1); // rate 3 from a1
    let u2 = b.add_user(s2); // rate 6 from a1
    b.link(a1, u1, mbps(3)).unwrap();
    b.link(a1, u2, mbps(6)).unwrap();
    let inst = b.build().unwrap();
    let mut assoc = Association::empty(2);
    assoc.set(UserId(0), Some(mcast_core::ApId(0)));
    assoc.set(UserId(1), Some(mcast_core::ApId(0)));
    // 2/3 + 1/6 = 5/6.
    assert_eq!(assoc.total_load(&inst), Load::from_ratio(5, 6));
    let sol = solve_mla(&inst).unwrap();
    assert_eq!(sol.total_load, Load::from_ratio(5, 6));
}

/// A session nobody requests adds no sets, no load, no trouble.
#[test]
fn unrequested_session_is_inert() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6)]);
    let s1 = b.add_session(mbps(1));
    let _ghost = b.add_session(mbps(50));
    let ap = b.add_ap(Load::ONE);
    let u = b.add_user(s1);
    b.link(ap, u, mbps(6)).unwrap();
    let inst = b.build().unwrap();
    let sol = solve_mla(&inst).unwrap();
    assert_eq!(sol.total_load, Load::from_ratio(1, 6));
}

/// Every user requesting the same session from one AP costs exactly one
/// transmission at the slowest member rate, regardless of head-count.
#[test]
fn one_session_one_ap_single_transmission() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6), mbps(12), mbps(24)]);
    let s = b.add_session(mbps(2));
    let ap = b.add_ap(Load::ONE);
    for rate in [6, 12, 24, 24, 12, 6, 24] {
        let u = b.add_user(s);
        b.link(ap, u, mbps(rate)).unwrap();
    }
    let inst = b.build().unwrap();
    for sol in [solve_mla(&inst).unwrap(), solve_bla(&inst).unwrap()] {
        assert_eq!(sol.satisfied, 7);
        assert_eq!(sol.total_load, Load::from_ratio(2, 6));
    }
}

/// MNU under BasicOnly: the basic rate makes every set cost the same, so
/// admission reduces to counting; budgets still bind correctly.
#[test]
fn mnu_basic_only_counts_transmissions() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6), mbps(54)]);
    b.rate_policy(RatePolicy::BasicOnly);
    // Budget fits exactly two basic-rate transmissions of 1 Mbps streams.
    let ap = b.add_ap(Load::from_ratio(2, 6));
    for _ in 0..3 {
        let s = b.add_session(mbps(1));
        let u = b.add_user(s);
        b.link(ap, u, mbps(54)).unwrap();
    }
    let inst = b.build().unwrap();
    let sol = solve_mnu(&inst);
    assert_eq!(sol.satisfied, 2);
    assert_eq!(sol.total_load, Load::from_ratio(2, 6));
}

/// SSA determinism under exact signal ties across APs.
#[test]
fn ssa_tie_break_is_stable() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6)]);
    let s = b.add_session(mbps(1));
    let a0 = b.add_ap(Load::ONE);
    let a1 = b.add_ap(Load::ONE);
    let a2 = b.add_ap(Load::ONE);
    let u = b.add_user(s);
    for a in [a2, a1, a0] {
        b.link(a, u, mbps(6)).unwrap(); // identical default signals
    }
    let inst = b.build().unwrap();
    let sol = solve_ssa(&inst, Objective::Mla);
    assert_eq!(sol.association.ap_of(u), Some(a0)); // lowest id wins ties
}

/// The distributed engines tolerate a user with zero candidates mid-run.
#[test]
fn distributed_with_islanded_user() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6)]);
    let s = b.add_session(mbps(1));
    let ap = b.add_ap(Load::ONE);
    let near = b.add_user(s);
    let _island = b.add_user(s); // no links at all
    b.link(ap, near, mbps(6)).unwrap();
    let inst = b.build().unwrap();
    for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
        let out = run_distributed(
            &inst,
            &DistributedConfig {
                policy,
                ..DistributedConfig::default()
            },
            Association::empty(2),
        );
        assert!(out.converged);
        assert_eq!(out.association.satisfied_count(), 1);
    }
}

/// Instance accessors behave on the 400-user paper-scale shape (spot
/// check that candidate lists stay sorted and reciprocal).
#[test]
fn adjacency_reciprocity_at_scale() {
    let scenario = mcast_topology::ScenarioConfig::paper_default()
        .with_seed(3)
        .generate();
    let inst: &Instance = &scenario.instance;
    for u in inst.users() {
        let mut last = None;
        for &(a, rate) in inst.candidate_aps(u) {
            assert_eq!(inst.link_rate(a, u), Some(rate));
            assert!(inst.reachable_users(a).binary_search(&u).is_ok());
            if let Some(prev) = last {
                assert!(a > prev, "candidate list not sorted");
            }
            last = Some(a);
        }
    }
}

/// The three solvers agree on a network where the optimum is forced
/// (every user has exactly one AP): there is only one answer.
#[test]
fn forced_unique_solution() {
    let mut b = InstanceBuilder::new();
    b.supported_rates([mbps(6), mbps(12)]);
    let s1 = b.add_session(mbps(1));
    let s2 = b.add_session(mbps(1));
    let a0 = b.add_ap(Load::ONE);
    let a1 = b.add_ap(Load::ONE);
    let pairs = [(a0, s1, 6), (a0, s2, 12), (a1, s1, 12), (a1, s2, 6)];
    for (ap, sess, rate) in pairs {
        let u = b.add_user(sess);
        b.link(ap, u, mbps(rate)).unwrap();
    }
    let inst = b.build().unwrap();
    let expect = Load::from_ratio(1, 6) + Load::from_ratio(1, 12);
    for sol in [solve_mla(&inst).unwrap(), solve_bla(&inst).unwrap()] {
        assert_eq!(sol.total_load, expect + expect);
        assert_eq!(sol.max_load, expect);
    }
    let ssa = solve_ssa(&inst, Objective::Mla);
    assert_eq!(ssa.total_load, expect + expect);
}

/// Figure 1 with both stream-rate variants in one run: instances are
/// independent (no shared state anywhere).
#[test]
fn instances_are_independent() {
    let light = figure1_instance(mbps(1));
    let heavy = figure1_instance(mbps(3));
    let l = solve_mla(&light).unwrap();
    let h = solve_mnu(&heavy);
    assert_eq!(l.total_load, Load::from_ratio(7, 12));
    assert_eq!(h.satisfied, 3);
    // Re-solving light is unaffected by having solved heavy.
    assert_eq!(
        solve_mla(&light).unwrap().total_load,
        Load::from_ratio(7, 12)
    );
}
