//! Property-based equivalence suite for the partitioned parallel engine:
//! for random coverable instances, every worker count `W ∈ {1, 2, 4, 8}`,
//! both execution modes, both policies, several hysteresis levels and
//! decision orders, `run_distributed_partitioned` must reproduce
//! `run_distributed` exactly — outcome, association, final ledger state,
//! and the full decision sequence.
//!
//! The case count honors `PROPTEST_CASES` (CI's `partition-smoke` job
//! runs a reduced count) and defaults to 32 — each case runs
//! 2 policies × 2 modes × 4 worker counts = 16 engine comparisons.

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_core::{
    run_distributed_partitioned, run_distributed_partitioned_traced, run_distributed_supervised,
    run_distributed_traced, ApId, Association, ChaosPlan, DecisionOrder, DistributedConfig,
    ExecutionMode, Instance, InstanceBuilder, Kbps, Load, LoadLedger, Partition, Policy,
    SuperviseOptions,
};

const RATES: [u32; 4] = [6, 12, 24, 54];

/// A random instance where AP 0 reaches every user (coverable by
/// construction); other links appear at random. Same shape as the
/// `properties.rs` strategy.
fn coverable_instance() -> impl Strategy<Value = Instance> {
    (1usize..5, 1usize..12, 1usize..4).prop_flat_map(|(n_aps, n_users, n_sessions)| {
        let user_sessions = vec(0u32..(n_sessions as u32), n_users);
        let links = vec(proptest::option::of(0usize..RATES.len()), n_aps * n_users);
        let base_rates = vec(0usize..RATES.len(), n_users);
        (
            Just(n_aps),
            Just(n_sessions),
            user_sessions,
            links,
            base_rates,
        )
            .prop_map(|(n_aps, n_sessions, sessions, links, base_rates)| {
                let mut b = InstanceBuilder::new();
                b.supported_rates(RATES.iter().map(|&m| Kbps::from_mbps(m)));
                let session_ids: Vec<_> = (0..n_sessions)
                    .map(|_| b.add_session(Kbps::from_mbps(1)))
                    .collect();
                let ap_ids: Vec<_> = (0..n_aps).map(|_| b.add_ap(Load::permille(900))).collect();
                let user_ids: Vec<_> = sessions
                    .iter()
                    .map(|&s| b.add_user(session_ids[s as usize]))
                    .collect();
                for (u, &ridx) in base_rates.iter().enumerate() {
                    b.link(ap_ids[0], user_ids[u], Kbps::from_mbps(RATES[ridx]))
                        .unwrap();
                }
                for a in 1..n_aps {
                    for u in 0..user_ids.len() {
                        if let Some(ridx) = links[a * user_ids.len() + u] {
                            b.link(ap_ids[a], user_ids[u], Kbps::from_mbps(RATES[ridx]))
                                .unwrap();
                        }
                    }
                }
                b.build().unwrap()
            })
    })
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The headline equivalence: identical `DistributedOutcome`
    /// (association, rounds, moves, flags), identical final ledger, and
    /// identical decision trace for every worker count, mode, policy,
    /// hysteresis level and decision order — from both empty and
    /// all-on-AP0 starts.
    #[test]
    fn partitioned_matches_single_thread(
        inst in coverable_instance(),
        seed in 0u64..3,
        hyst_kind in 0u8..3,
        budget_raw in 0u8..2,
        start_kind in 0u8..2,
    ) {
        let hysteresis = match hyst_kind {
            0 => Load::ZERO,
            1 => Load::from_ratio(1, 20),
            _ => Load::from_ratio(1, 6),
        };
        let initial = if start_kind == 0 {
            Association::empty(inst.n_users())
        } else {
            // AP 0 reaches everyone by construction.
            Association::from_vec(vec![Some(ApId(0)); inst.n_users()])
        };
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
                let config = DistributedConfig {
                    policy,
                    mode,
                    max_rounds: 40,
                    respect_budget: budget_raw == 1,
                    hysteresis,
                    order: if seed == 0 {
                        DecisionOrder::ById
                    } else {
                        DecisionOrder::Shuffled(seed)
                    },
                };
                let (single, strace) =
                    run_distributed_traced(&inst, &config, initial.clone());
                let single_ledger = LoadLedger::new(&inst, single.association.clone());
                for w in [1usize, 2, 4, 8] {
                    let part = Partition::contiguous(&inst, w).unwrap();
                    let (par, ptrace) = run_distributed_partitioned_traced(
                        &inst,
                        &config,
                        initial.clone(),
                        &part,
                    )
                    .unwrap();
                    let ctx = format!("{policy:?}/{mode:?} W={w}");
                    prop_assert_eq!(
                        &par.association,
                        &single.association,
                        "association: {}", ctx
                    );
                    prop_assert_eq!(par.rounds, single.rounds, "rounds: {}", ctx);
                    prop_assert_eq!(par.moves, single.moves, "moves: {}", ctx);
                    prop_assert_eq!(par.converged, single.converged, "converged: {}", ctx);
                    prop_assert_eq!(
                        par.cycle_detected,
                        single.cycle_detected,
                        "cycle: {}", ctx
                    );
                    prop_assert_eq!(&ptrace, &strace, "decision trace: {}", ctx);
                    // Final ledger state (per-AP loads and tx rates) is a
                    // pure function of the association — pin it anyway.
                    let par_ledger = LoadLedger::new(&inst, par.association.clone());
                    for a in inst.aps() {
                        prop_assert_eq!(par_ledger.ap_load(a), single_ledger.ap_load(a));
                        for s in inst.sessions() {
                            prop_assert_eq!(
                                par_ledger.ap_session_rate(a, s),
                                single_ledger.ap_session_rate(a, s)
                            );
                        }
                    }
                }
            }
        }
    }

    /// Boundary classification sanity on random instances: every
    /// other-tile candidate AP of any user is classified boundary, and a
    /// one-tile partition has no boundary at all.
    #[test]
    fn boundary_classification_is_sound(inst in coverable_instance()) {
        for w in [1usize, 2, 4] {
            let part = Partition::contiguous(&inst, w).unwrap();
            for u in inst.users() {
                for &(a, _) in inst.candidate_aps(u) {
                    if part.ap_tile(a) != part.user_tile(u) {
                        prop_assert!(
                            part.is_boundary_ap(a),
                            "cross-tile candidate {} of {} not boundary", a, u
                        );
                    }
                    if part.is_boundary_ap(a) {
                        prop_assert!(part.is_boundary_user(u));
                    }
                }
            }
        }
        let single = Partition::contiguous(&inst, 1).unwrap();
        prop_assert_eq!(single.boundary_ap_count(), 0);
        prop_assert_eq!(single.boundary_user_count(), 0);
    }

    /// Repeated partitioned runs are deterministic (no schedule leakage).
    #[test]
    fn partitioned_runs_are_deterministic(inst in coverable_instance()) {
        let config = DistributedConfig {
            mode: ExecutionMode::Serial,
            ..DistributedConfig::default()
        };
        let part = Partition::contiguous(&inst, 4).unwrap();
        let run = || run_distributed_partitioned(
            &inst,
            &config,
            Association::empty(inst.n_users()),
            &part,
        )
        .unwrap();
        let (a, b) = (run(), run());
        prop_assert_eq!(a.association, b.association);
        prop_assert_eq!(a.moves, b.moves);
    }

    /// Chaos equivalence: a supervised run under a seeded fault plan
    /// (worker panics, dropped/delayed/duplicated halo replies) recovers
    /// to the exact fault-free outcome and decision trace — for both
    /// modes, both policies, W ∈ {2, 4}.
    #[test]
    fn chaos_recovers_to_the_fault_free_run(
        inst in coverable_instance(),
        chaos_seed in 0u64..u64::MAX,
    ) {
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
                let config = DistributedConfig {
                    policy,
                    mode,
                    max_rounds: 30,
                    ..DistributedConfig::default()
                };
                let initial = Association::empty(inst.n_users());
                let (single, strace) =
                    run_distributed_traced(&inst, &config, initial.clone());
                for w in [2usize, 4] {
                    let part = Partition::contiguous(&inst, w).unwrap();
                    // Seed faults only into rounds the run actually
                    // executes, so every plan injects something.
                    let chaos =
                        ChaosPlan::seeded(chaos_seed, w, single.rounds.max(1) as u32);
                    let opts = SuperviseOptions {
                        trace: true,
                        chaos: Some(&chaos),
                        ..SuperviseOptions::default()
                    };
                    let out = run_distributed_supervised(
                        &inst,
                        &config,
                        initial.clone(),
                        &part,
                        &opts,
                    )
                    .unwrap();
                    let ctx = format!("{policy:?}/{mode:?} W={w} seed={chaos_seed}");
                    prop_assert_eq!(
                        &out.outcome.association,
                        &single.association,
                        "association: {}", ctx
                    );
                    prop_assert_eq!(out.outcome.moves, single.moves, "moves: {}", ctx);
                    prop_assert_eq!(&out.trace, &strace, "trace: {}", ctx);
                    prop_assert!(
                        !out.recovery.clean(),
                        "seeded chaos must inject at least one fault: {}", ctx
                    );
                }
            }
        }
    }
}
