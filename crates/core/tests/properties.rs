//! Property-based tests for the core model and algorithms.

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_core::{
    local_decision_reference, local_decision_with, run_distributed, run_distributed_reference,
    solve_bla, solve_mla, solve_mnu, solve_ssa, ApId, Association, DecisionOrder,
    DistributedConfig, ExecutionMode, Instance, InstanceBuilder, Kbps, Load, LoadLedger, Objective,
    Policy, ReferenceLedger, UserId,
};

const RATES: [u32; 4] = [6, 12, 24, 54];

/// A random instance where AP 0 reaches every user (coverable by
/// construction); other links appear at random.
fn coverable_instance() -> impl Strategy<Value = Instance> {
    (1usize..5, 1usize..12, 1usize..4).prop_flat_map(|(n_aps, n_users, n_sessions)| {
        let user_sessions = vec(0u32..(n_sessions as u32), n_users);
        // For each (ap, user): Option<rate index>, with ap0 always linked.
        let links = vec(proptest::option::of(0usize..RATES.len()), n_aps * n_users);
        let base_rates = vec(0usize..RATES.len(), n_users);
        (
            Just(n_aps),
            Just(n_sessions),
            user_sessions,
            links,
            base_rates,
        )
            .prop_map(|(n_aps, n_sessions, sessions, links, base_rates)| {
                let mut b = InstanceBuilder::new();
                b.supported_rates(RATES.iter().map(|&m| Kbps::from_mbps(m)));
                let session_ids: Vec<_> = (0..n_sessions)
                    .map(|_| b.add_session(Kbps::from_mbps(1)))
                    .collect();
                let ap_ids: Vec<_> = (0..n_aps).map(|_| b.add_ap(Load::permille(900))).collect();
                let user_ids: Vec<_> = sessions
                    .iter()
                    .map(|&s| b.add_user(session_ids[s as usize]))
                    .collect();
                for (u, &ridx) in base_rates.iter().enumerate() {
                    b.link(ap_ids[0], user_ids[u], Kbps::from_mbps(RATES[ridx]))
                        .unwrap();
                }
                for a in 1..n_aps {
                    for u in 0..user_ids.len() {
                        if let Some(ridx) = links[a * user_ids.len() + u] {
                            b.link(ap_ids[a], user_ids[u], Kbps::from_mbps(RATES[ridx]))
                                .unwrap();
                        }
                    }
                }
                b.build().unwrap()
            })
    })
}

fn load_strategy() -> impl Strategy<Value = Load> {
    (-200i128..200, 1i128..60).prop_map(|(n, d)| Load::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---- Load arithmetic laws ----

    #[test]
    fn load_add_commutative_associative(a in load_strategy(), b in load_strategy(), c in load_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Load::ZERO, a);
    }

    #[test]
    fn load_sub_inverts_add(a in load_strategy(), b in load_strategy()) {
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a - a, Load::ZERO);
    }

    #[test]
    fn load_order_matches_f64(a in load_strategy(), b in load_strategy()) {
        // Exact ordering must agree with float ordering away from ties.
        if (a.as_f64() - b.as_f64()).abs() > 1e-9 {
            prop_assert_eq!(a < b, a.as_f64() < b.as_f64());
        }
        prop_assert!(a <= a);
    }

    #[test]
    fn load_order_compatible_with_add(a in load_strategy(), b in load_strategy(), c in load_strategy()) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }

    // ---- Solver invariants on random instances ----

    #[test]
    fn mla_serves_everyone_and_realized_within_model(inst in coverable_instance()) {
        let sol = solve_mla(&inst).unwrap();
        prop_assert_eq!(sol.satisfied, inst.n_users());
        prop_assert!(sol.total_load <= sol.model_cost.unwrap());
        for u in inst.users() {
            let a = sol.association.ap_of(u).unwrap();
            prop_assert!(inst.link_rate(a, u).is_some());
        }
    }

    #[test]
    fn bla_serves_everyone_realized_within_model(inst in coverable_instance()) {
        let sol = solve_bla(&inst).unwrap();
        prop_assert_eq!(sol.satisfied, inst.n_users());
        prop_assert!(sol.max_load <= sol.model_cost.unwrap());
        // Total can never beat the MLA greedy by definition of objectives?
        // No such guarantee — but max_load <= total_load always.
        prop_assert!(sol.max_load <= sol.total_load);
    }

    #[test]
    fn mnu_is_budget_feasible(inst in coverable_instance()) {
        let sol = solve_mnu(&inst);
        prop_assert!(sol.association.is_feasible(&inst));
        // Stats agree with a from-scratch evaluation.
        prop_assert_eq!(sol.total_load, sol.association.total_load(&inst));
        prop_assert_eq!(sol.max_load, sol.association.max_load(&inst));
        prop_assert_eq!(sol.satisfied, sol.association.satisfied_count());
    }

    #[test]
    fn ssa_is_budget_feasible_and_deterministic(inst in coverable_instance()) {
        let s1 = solve_ssa(&inst, Objective::Mnu);
        let s2 = solve_ssa(&inst, Objective::Mnu);
        prop_assert!(s1.association.is_feasible(&inst));
        prop_assert_eq!(s1.association, s2.association);
    }

    // ---- Distributed invariants ----

    #[test]
    fn serial_distributed_converges_and_is_feasible(inst in coverable_instance()) {
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            let out = run_distributed(
                &inst,
                &DistributedConfig { policy, ..DistributedConfig::default() },
                Association::empty(inst.n_users()),
            );
            prop_assert!(out.converged, "serial mode must converge (Lemmas 1-2)");
            prop_assert!(!out.cycle_detected);
            prop_assert!(out.association.is_feasible(&inst));
        }
    }

    #[test]
    fn serial_runs_are_deterministic(inst in coverable_instance()) {
        let run = || run_distributed(
            &inst,
            &DistributedConfig::default(),
            Association::empty(inst.n_users()),
        );
        prop_assert_eq!(run().association, run().association);
    }

    #[test]
    fn simultaneous_terminates_via_convergence_or_cycle(inst in coverable_instance()) {
        let out = run_distributed(
            &inst,
            &DistributedConfig {
                mode: ExecutionMode::Simultaneous,
                max_rounds: 60,
                ..DistributedConfig::default()
            },
            Association::empty(inst.n_users()),
        );
        // Either it settles, or a cycle is flagged, or the round cap hits;
        // all are reported coherently.
        if out.converged {
            prop_assert!(!out.cycle_detected);
        }
        prop_assert!(out.rounds <= 60);
    }

    // ---- Ledger vs batch equivalence under random operations ----

    #[test]
    fn ledger_equals_batch_after_random_ops(
        inst in coverable_instance(),
        ops in vec((0u32..12, 0u32..5), 0..40),
    ) {
        let mut ledger = LoadLedger::new(&inst, Association::empty(inst.n_users()));
        for (u_raw, a_raw) in ops {
            let u = UserId(u_raw % inst.n_users() as u32);
            let a = ApId(a_raw % inst.n_aps() as u32);
            if inst.link_rate(a, u).is_some() {
                ledger.reassociate(u, a);
            } else if ledger.ap_of(u).is_some() {
                ledger.leave(u);
            }
        }
        let assoc = ledger.association().clone();
        for a in inst.aps() {
            prop_assert_eq!(ledger.ap_load(a), assoc.ap_load(a, &inst));
        }
        prop_assert_eq!(ledger.total_load(), assoc.total_load(&inst));
        prop_assert_eq!(ledger.max_load(), assoc.max_load(&inst));
    }

    // ---- Fast paths vs pre-optimization reference oracles ----

    /// The count-array `LoadLedger` tracks the `BTreeMap` reference ledger
    /// through arbitrary join/leave/move sequences — every observable
    /// (loads, hypotheticals, per-session tx rates) at every step.
    #[test]
    fn fast_ledger_matches_reference_on_random_moves(
        inst in coverable_instance(),
        ops in vec((0u32..12, 0u32..5), 0..40),
    ) {
        let mut fast = LoadLedger::new(&inst, Association::empty(inst.n_users()));
        let mut reference = ReferenceLedger::fresh(&inst);
        for (u_raw, a_raw) in ops {
            let u = UserId(u_raw % inst.n_users() as u32);
            let a = ApId(a_raw % inst.n_aps() as u32);
            if inst.link_rate(a, u).is_some() {
                fast.reassociate(u, a);
                reference.reassociate(u, a);
            } else if fast.ap_of(u).is_some() {
                fast.leave(u);
                reference.leave(u);
            }
            for b in inst.aps() {
                prop_assert_eq!(fast.ap_load(b), reference.ap_load(b));
                for s in inst.sessions() {
                    prop_assert_eq!(fast.ap_session_rate(b, s), reference.ap_session_rate(b, s));
                }
            }
            for v in inst.users() {
                prop_assert_eq!(fast.ap_of(v), reference.ap_of(v));
                prop_assert_eq!(fast.load_if_left(v), reference.load_if_left(v));
                for &(b, _) in inst.candidate_aps(v) {
                    prop_assert_eq!(fast.load_if_joined(v, b), reference.load_if_joined(v, b));
                }
            }
        }
        prop_assert_eq!(fast.association(), reference.association());
    }

    /// The delta-evaluated decision rule equals the naive
    /// sort-per-candidate oracle on random states — both policies, with
    /// and without budgets, across hysteresis levels (exercising the
    /// lexicographic, signal, and id tie-breaks).
    #[test]
    fn delta_decision_matches_reference(
        inst in coverable_instance(),
        ops in vec((0u32..12, 0u32..5), 0..30),
        hyst_kind in 0u8..3,
        budget_raw in 0u8..2,
    ) {
        let mut ledger = LoadLedger::new(&inst, Association::empty(inst.n_users()));
        for (u_raw, a_raw) in ops {
            let u = UserId(u_raw % inst.n_users() as u32);
            let a = ApId(a_raw % inst.n_aps() as u32);
            if inst.link_rate(a, u).is_some() {
                ledger.reassociate(u, a);
            } else if ledger.ap_of(u).is_some() {
                ledger.leave(u);
            }
        }
        let reference = ReferenceLedger::new(&inst, ledger.association().clone());
        let hysteresis = match hyst_kind {
            0 => Load::ZERO,
            1 => Load::from_ratio(1, 100),
            _ => Load::from_ratio(1, 6),
        };
        let respect_budget = budget_raw == 1;
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            for u in inst.users() {
                let fast = local_decision_with(&ledger, u, policy, respect_budget, hysteresis);
                let refd =
                    local_decision_reference(&reference, u, policy, respect_budget, hysteresis);
                prop_assert_eq!(fast, refd, "policy {:?} user {}", policy, u);
            }
        }
    }

    /// The worklist convergence loop reproduces the full-sweep reference
    /// run outcome-for-outcome: association, rounds, moves, convergence
    /// and cycle flags — both modes, both policies, shuffled orders.
    #[test]
    fn fast_run_matches_reference_run(
        inst in coverable_instance(),
        seed in 0u64..4,
    ) {
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
                let config = DistributedConfig {
                    policy,
                    mode,
                    max_rounds: 40,
                    order: if seed == 0 {
                        DecisionOrder::ById
                    } else {
                        DecisionOrder::Shuffled(seed)
                    },
                    ..DistributedConfig::default()
                };
                let fast = run_distributed(&inst, &config, Association::empty(inst.n_users()));
                let reference =
                    run_distributed_reference(&inst, &config, Association::empty(inst.n_users()));
                prop_assert_eq!(&fast.association, &reference.association);
                prop_assert_eq!(fast.rounds, reference.rounds);
                prop_assert_eq!(fast.moves, reference.moves);
                prop_assert_eq!(fast.converged, reference.converged);
                prop_assert_eq!(fast.cycle_detected, reference.cycle_detected);
            }
        }
    }

    #[test]
    fn association_sentinel_serde_roundtrips(
        by_user in vec(proptest::option::of(0u32..10_000), 0..200),
    ) {
        // The compact representation (one u32 per user, `u32::MAX` =
        // unassociated) must survive the JSON wire exactly, including
        // the `None` sentinel.
        let assoc = Association::from_vec(
            by_user.iter().map(|a| a.map(ApId)).collect(),
        );
        let json = serde_json::to_string(&assoc).expect("association serializes");
        let back: Association = serde_json::from_str(&json).expect("association parses");
        prop_assert_eq!(&back, &assoc);
        prop_assert_eq!(
            back.to_vec(),
            by_user.iter().map(|a| a.map(ApId)).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            assoc.satisfied_count(),
            by_user.iter().filter(|a| a.is_some()).count()
        );
    }

    #[test]
    fn ledger_hypotheticals_match_reality(inst in coverable_instance()) {
        let mut ledger = LoadLedger::new(&inst, Association::empty(inst.n_users()));
        for u in inst.users() {
            let a = ApId(0); // always linked by construction
            let predicted = ledger.load_if_joined(u, a).unwrap();
            ledger.join(u, a);
            prop_assert_eq!(ledger.ap_load(a), predicted);
        }
        for u in inst.users() {
            let predicted = ledger.load_if_left(u).unwrap();
            ledger.leave(u);
            prop_assert_eq!(ledger.ap_load(ApId(0)), predicted);
        }
    }
}
