//! Derive macros for the vendored `serde` crate.
//!
//! The workspace container has no network access, so `syn`/`quote` are not
//! available either; parsing is done directly over `proc_macro` token
//! trees. Supported input shapes are exactly what this workspace uses:
//!
//! - named structs, tuple structs (newtype and general), unit structs;
//! - enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, like real serde's default representation);
//! - plain type generics (`struct Foo<C> { .. }`), with the serialization
//!   bound added to each parameter;
//! - the `#[serde(default)]` field attribute and the container-level
//!   `#[serde(try_from = "T", into = "T")]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Default)]
struct ContainerAttrs {
    try_from: Option<String>,
    into: Option<String>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let container_attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    pos += 1;
    let generics = parse_generics(&tokens, &mut pos);

    let body = match kind.as_str() {
        "struct" => parse_struct_body(&tokens, &mut pos),
        "enum" => Body::Enum(parse_enum_body(&tokens, &mut pos)),
        other => panic!("serde derive: cannot derive for `{other}`"),
    };

    let bound = match mode {
        Mode::Serialize => "::serde::Serialize",
        Mode::Deserialize => "::serde::Deserialize",
    };
    let (impl_generics, ty_generics) = render_generics(&generics, bound);

    let out = match mode {
        Mode::Serialize => {
            let body_code = if let Some(into_ty) = &container_attrs.into {
                format!(
                    "let __raw: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
                     ::serde::Serialize::serialize_value(&__raw)"
                )
            } else {
                serialize_body(&name, &body)
            };
            format!(
                "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n{body_code}\n}}\n\
                 }}"
            )
        }
        Mode::Deserialize => {
            let body_code = if let Some(from_ty) = &container_attrs.try_from {
                format!(
                    "let __raw: {from_ty} = ::serde::Deserialize::deserialize_value(__v)?;\n\
                     ::core::convert::TryFrom::try_from(__raw).map_err(::serde::DeError::custom)"
                )
            } else {
                deserialize_body(&name, &body)
            };
            format!(
                "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
                     fn deserialize_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body_code}\n}}\n\
                 }}"
            )
        }
    };
    out.parse()
        .unwrap_or_else(|e| panic!("serde derive: generated invalid code for `{name}`: {e}\n{out}"))
}

// ---------------------------------------------------------------- parsing

/// Consumes leading `#[...]` attributes, returning any serde container
/// attrs found. (Field-level callers reuse this and read `default`.)
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_serde_attr_group(&g.stream(), &mut attrs);
                *pos += 2;
            }
            _ => return attrs,
        }
    }
}

/// Reads one `[...]` attribute body; if it is `serde(...)`, records the
/// recognized keys.
fn parse_serde_attr_group(stream: &TokenStream, attrs: &mut ContainerAttrs) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i < inner.len() {
                if let TokenTree::Ident(key) = &inner[i] {
                    let key = key.to_string();
                    let value = match (inner.get(i + 1), inner.get(i + 2)) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            i += 2;
                            Some(unquote(&lit.to_string()))
                        }
                        _ => None,
                    };
                    match (key.as_str(), value) {
                        ("try_from", Some(v)) => attrs.try_from = Some(v),
                        ("into", Some(v)) => attrs.into = Some(v),
                        _ => {} // `default` is field-level; unknown attrs ignored
                    }
                }
                i += 1;
            }
        }
        _ => {} // not a serde attr (doc comment etc.)
    }
}

/// True if the token slice `#[serde(...)]` attrs at `pos` include
/// `default`; consumes them along the way.
fn parse_field_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
                    (toks.first(), toks.get(1))
                {
                    if name.to_string() == "serde" {
                        for t in args.stream() {
                            if let TokenTree::Ident(i) = t {
                                if i.to_string() == "default" {
                                    default = true;
                                }
                            }
                        }
                    }
                }
                *pos += 2;
            }
            _ => return default,
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1; // pub(crate) etc.
                }
            }
        }
    }
}

/// Parses `<...>` generic parameters into their source text, one string
/// per parameter (bounds kept, defaults stripped).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*pos) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut current = String::new();
    while depth > 0 {
        let t = tokens
            .get(*pos)
            .unwrap_or_else(|| panic!("serde derive: unclosed generics"));
        *pos += 1;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    params.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push_str(&t.to_string());
        current.push(' ');
    }
    if !current.trim().is_empty() {
        params.push(current);
    }
    params
        .into_iter()
        .map(|p| p.split('=').next().unwrap().trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

/// `(impl_generics, ty_generics)` render of the parameter list, adding
/// `bound` to every non-lifetime parameter.
fn render_generics(params: &[String], bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_parts = Vec::new();
    let mut ty_parts = Vec::new();
    for p in params {
        let ident = p.split(':').next().unwrap().trim().to_string();
        ty_parts.push(ident.clone());
        if ident.starts_with('\'') {
            impl_parts.push(p.clone());
        } else if p.contains(':') {
            impl_parts.push(format!("{p} + {bound}"));
        } else {
            impl_parts.push(format!("{ident}: {bound}"));
        }
    }
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
    )
}

fn parse_struct_body(tokens: &[TokenTree], pos: &mut usize) -> Body {
    // Skip anything (e.g. a `where` clause) until the body group or `;`.
    while let Some(t) = tokens.get(*pos) {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream());
                return Body::NamedStruct(fields);
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Body::TupleStruct(count_tuple_fields(&g.stream()));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => return Body::UnitStruct,
            _ => *pos += 1,
        }
    }
    Body::UnitStruct
}

fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = parse_field_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!(
                "serde derive: expected field name, found {:?}",
                tokens.get(i)
            );
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

/// Advances past a type, stopping after the top-level `,` (or at end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        parse_field_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if tokens.get(i).is_none() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], pos: &mut usize) -> Vec<Variant> {
    let group = loop {
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => *pos += 1,
            None => panic!("serde derive: enum without a body"),
        }
    };
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        parse_field_attrs(&toks, &mut i); // tolerate (and ignore) variant attrs
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!(
                "serde derive: expected variant name, found {:?}",
                toks.get(i)
            );
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip to past the separating comma (covers discriminants).
        while let Some(t) = toks.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ------------------------------------------------------------- generation

fn serialize_body(name: &str, body: &Body) -> String {
    match body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::serialize_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize_value(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Serialize::serialize_value(__f{i})")
                                })
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::serialize_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn named_fields_deserialization(fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fetch = if f.default {
                format!(
                    "match {source}.get(\"{0}\") {{ Some(__x) => ::serde::Deserialize::deserialize_value(__x)?, None => ::core::default::Default::default() }}",
                    f.name
                )
            } else {
                format!(
                    "match {source}.get(\"{0}\") {{ Some(__x) => ::serde::Deserialize::deserialize_value(__x)?, None => return ::core::result::Result::Err(::serde::DeError(format!(\"missing field `{0}`\"))) }}",
                    f.name
                )
            };
            format!("let __field_{0} = {fetch};", f.name)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn deserialize_body(name: &str, body: &Body) -> String {
    match body {
        Body::UnitStruct => format!("Ok({name})"),
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} => Ok({name}({items})),\n\
                     __other => Err(::serde::DeError(format!(\"expected {n}-element array for `{name}`, found {{}}\", __other.kind()))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let lets = named_fields_deserialization(fields, "__v");
            let build: Vec<String> = fields
                .iter()
                .map(|f| format!("{0}: __field_{0}", f.name))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Object(_) => {{\n{lets}\nOk({name} {{ {build} }})\n}}\n\
                     __other => Err(::serde::DeError(format!(\"expected object for `{name}`, found {{}}\", __other.kind()))),\n\
                 }}",
                build = build.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize_value(__inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {n} => Ok({name}::{vn}({items})),\n\
                                     __other => Err(::serde::DeError(format!(\"expected {n}-element array for variant `{vn}`, found {{}}\", __other.kind()))),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let lets = named_fields_deserialization(fields, "__inner");
                            let build: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{0}: __field_{0}", f.name))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Object(_) => {{\n{lets}\nOk({name}::{vn} {{ {build} }})\n}}\n\
                                     __other => Err(::serde::DeError(format!(\"expected object for variant `{vn}`, found {{}}\", __other.kind()))),\n\
                                 }},",
                                build = build.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::DeError(format!(\"unknown unit variant `{{__other}}` for `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError(format!(\"expected variant of `{name}`, found {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    }
}
