//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the vendored
//! `serde` value tree.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a structural mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

// --------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            let text = format!("{f}");
            out.push_str(&text);
            // Keep floats recognizable as floats on the way back in.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting the parser accepts. The parser is
/// recursive-descent, so without this cap a hostile `[[[[…` document a
/// few hundred kilobytes long overflows the stack and aborts the
/// process; with it, over-deep input is an ordinary [`Error`].
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Fails on malformed JSON, trailing garbage, or nesting deeper than
/// [`MAX_PARSE_DEPTH`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(Error(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at offset {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".to_string()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_bomb_is_an_error_not_a_stack_overflow() {
        // Without the depth cap this recursed once per byte and aborted
        // the process on a few hundred kilobytes of input.
        let bomb = "[".repeat(500_000);
        let err = parse_value(&bomb).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let obj_bomb = "{\"k\":".repeat(200_000);
        let err = parse_value(&obj_bomb).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn nesting_at_the_cap_still_parses() {
        let depth = MAX_PARSE_DEPTH;
        let doc = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse_value(&doc).is_ok());
        let over = format!("{}{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert!(parse_value(&over).is_err());
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<Vec<i64>>("[1, 2, -3]").unwrap(), vec![1, 2, -3]);
        assert_eq!(
            to_string(&"a\"b\\c\nd".to_string()).unwrap(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(from_str::<String>(r#""a\"b\\c\nd""#).unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn nested_values_parse() {
        let v = parse_value(r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().kind(), "array");
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Str("x".into())));
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("true").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = parse_value(r#"{"a":[1]}"#).unwrap();
        let mut out = String::new();
        super::write_value(&v, &mut out, Some(2), 0).unwrap();
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
