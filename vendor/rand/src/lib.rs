//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses: [`RngCore`], [`SeedableRng`], and the [`Rng`] extension
//! trait with `gen`, `gen_range`, and `gen_bool`.
//!
//! The workspace container builds without network access, so the real
//! crates-io `rand` cannot be fetched; this vendored stand-in keeps the
//! same call sites compiling with deterministic, seedable behaviour. It is
//! *not* stream-compatible with upstream `rand` (generated values differ),
//! which is fine here: all seeds live inside this repository and only
//! self-consistency matters.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: the two word-level primitives everything
/// else is derived from.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// upstream `rand` 0.8 uses) and builds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a generator (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample_standard(rng) as i128
    }
}

/// Ranges a uniform value can be drawn from (`rng.gen_range(a..b)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Lemire widening-multiply mapping (slight bias is fine
                // for simulation workloads; determinism is what matters).
                let r = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                self.start + r
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                lo + r
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64);

impl SampleRange<i128> for Range<i128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        let r = (u128::sample_standard(rng)) % span;
        self.start.wrapping_add(r as i128)
    }
}

impl SampleRange<i128> for RangeInclusive<i128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.wrapping_sub(lo) as u128;
        if span == u128::MAX {
            return i128::sample_standard(rng);
        }
        let r = u128::sample_standard(rng) % (span + 1);
        lo.wrapping_add(r as i128)
    }
}

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full-width
    /// integers, a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` stand-in (kept for path compatibility).
pub mod rngs {
    pub use super::mock::StepRng;
}

/// Simple deterministic generators for tests.
pub mod mock {
    use super::RngCore;

    /// Counts up from `v` by `step` — handy in unit tests.
    #[derive(Debug, Clone)]
    pub struct StepRng {
        v: u64,
        step: u64,
    }

    impl StepRng {
        /// A generator yielding `v`, `v + step`, `v + 2 * step`, …
        pub fn new(v: u64, step: u64) -> StepRng {
            StepRng { v, step }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.step);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 = sm.next();
            self.0
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = Fixed(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i128..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn seed_expansion_is_deterministic() {
        struct Seeded([u8; 16]);
        impl SeedableRng for Seeded {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Seeded {
                Seeded(seed)
            }
        }
        let a = Seeded::seed_from_u64(42).0;
        let b = Seeded::seed_from_u64(42).0;
        let c = Seeded::seed_from_u64(43).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
