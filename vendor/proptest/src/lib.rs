//! Offline mini property-testing harness.
//!
//! The workspace container cannot fetch crates-io `proptest`, so this
//! vendored stand-in provides the subset its tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`option::of`], [`Just`], the [`proptest!`] macro
//! with `#![proptest_config(...)]`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from the real crate: inputs are drawn from a per-case
//! seeded ChaCha8 generator (fully deterministic across runs and
//! platforms) and failing cases are reported without shrinking.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The generator handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Builds the deterministic generator for one test case.
pub fn test_rng(case: u64) -> TestRng {
    // Decorrelate consecutive case indices.
    TestRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D5A5_A5A5)
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected precondition.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_global_rejects: 4096,
        }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f`, re-drawing up to a bounded
    /// number of times.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 draws in a row", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An option strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: an optional `#![proptest_config(...)]` line
/// followed by `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rejects: u32 = 0;
            let mut __case: u64 = 0;
            let mut __ran: u32 = 0;
            while __ran < __cfg.cases {
                let mut __rng = $crate::test_rng(__case);
                __case += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __ran += 1;
                        __rejects = 0;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        assert!(
                            __rejects < __cfg.max_global_rejects,
                            "too many prop_assume! rejections ({}): {}",
                            __rejects,
                            __why
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case #{} failed: {}", __case - 1, __msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l != __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn strategies_draw_in_bounds() {
        let mut rng = test_rng(0);
        let strat = (2usize..12, 0usize..14).prop_flat_map(|(n, extra)| {
            collection::vec((0u32..(n as u32), 1u64..20), extra).prop_map(move |v| (n, v))
        });
        for case in 0..200 {
            let mut rng2 = test_rng(case);
            let (n, v) = strat.generate(&mut rng2);
            assert!((2..12).contains(&n));
            assert!(v.len() < 14);
            for (a, b) in v {
                assert!(a < n as u32);
                assert!((1..20).contains(&b));
            }
        }
        let opt = option::of(0i128..5);
        let some = (0..100)
            .filter(|_| opt.generate(&mut rng).is_some())
            .count();
        assert!(some > 50 && some < 100);
    }

    #[test]
    fn determinism_per_case() {
        let strat = collection::vec(0u64..1000, 5usize..30);
        let a = strat.generate(&mut test_rng(7));
        let b = strat.generate(&mut test_rng(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_works(x in 1u32..10, (a, b) in (0i64..5, 0i64..5)) {
            prop_assert!(x >= 1);
            prop_assert!(x < 10, "x was {}", x);
            prop_assume!(a + b < 9);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x, 0);
        }
    }

    proptest! {
        fn default_config_macro(v in collection::vec(0u8..3, 0usize..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
