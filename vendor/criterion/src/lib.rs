//! Offline stand-in for the subset of `criterion` this workspace's bench
//! targets use. It keeps the bench sources compiling and runnable without
//! network access: each benchmark runs its closure a handful of times and
//! reports wall-clock timings to stdout — no statistics, plots, or
//! baselines.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark (enough for a smoke signal, cheap enough for
/// CI).
const ITERS: u32 = 10;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

fn run_bench(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    println!("bench {label:<50} {:>12.0} ns/iter", b.nanos_per_iter);
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed here.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_bench(&label, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoGroupBenchId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Accepted id forms for [`BenchmarkGroup::bench_function`].
pub trait IntoGroupBenchId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoGroupBenchId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

impl IntoGroupBenchId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoGroupBenchId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        Criterion.bench_function("top", |b| b.iter(|| black_box(2u32.pow(10))));
    }
}
