//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the vendored [`rand`] traits. Deterministic and seedable;
//! not stream-compatible with the crates-io implementation (all seeds live
//! inside this repository, so only self-consistency matters).

use rand::{RngCore, SeedableRng};

/// ChaCha stream cipher core with 8 rounds, used as a CSPRNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per iteration: one column, one diagonal.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12–15 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let out = self.block[self.cursor];
        self.cursor += 1;
        out
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformish_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
