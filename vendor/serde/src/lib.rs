//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The container building this repository has no network access, so the
//! real crates-io `serde` cannot be fetched. This crate keeps the same
//! surface the workspace code relies on — `#[derive(Serialize,
//! Deserialize)]`, the `#[serde(default)]` field attribute, and the
//! `#[serde(try_from = "...", into = "...")]` container attributes — over a
//! much simpler data model: values serialize into an owned JSON-like
//! [`Value`] tree and deserialize back out of one. `serde_json` (also
//! vendored) renders and parses that tree.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation every
/// serializable type converts to and from.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integral JSON numbers (covers every integer type used here).
    Int(i128),
    /// Floating-point JSON numbers.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the tree does not match.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on any structural or range mismatch.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected one-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError(format!(
                        "expected {LEN}-tuple, found array of {}", items.len()
                    ))),
                    other => Err(DeError(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<&'static str, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(fields)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let v = 42u32.serialize_value();
        assert_eq!(u32::deserialize_value(&v), Ok(42));
        assert!(u8::deserialize_value(&Value::Int(300)).is_err());
        let v = (-3i128).serialize_value();
        assert_eq!(i128::deserialize_value(&v), Ok(-3));
        let v = vec![(1u32, "x".to_string())].serialize_value();
        assert_eq!(
            Vec::<(u32, String)>::deserialize_value(&v),
            Ok(vec![(1, "x".to_string())])
        );
        let v = Some(1.5f64).serialize_value();
        assert_eq!(Option::<f64>::deserialize_value(&v), Ok(Some(1.5)));
        assert_eq!(Option::<f64>::deserialize_value(&Value::Null), Ok(None));
    }
}
